"""Tests for the run-statistics containers (repro.core.stats)."""

import numpy as np
import pytest

from repro.core.stats import LengthStats, RunStats


def make_stats(mode, length=16, n_profiles=100, **kwargs):
    defaults = dict(
        length=length,
        mode=mode,
        elapsed_seconds=0.1,
        n_profiles=n_profiles,
    )
    defaults.update(kwargs)
    return LengthStats(**defaults)


class TestLengthStats:
    def test_valid_fraction(self):
        stats = make_stats("submp", n_valid=75)
        assert stats.valid_fraction == 0.75

    def test_valid_fraction_empty(self):
        stats = make_stats("submp", n_profiles=0)
        assert stats.valid_fraction == 0.0

    def test_margin_storage(self):
        margin = np.array([1.0, -2.0])
        stats = make_stats("submp", pruning_margin=margin)
        np.testing.assert_array_equal(stats.pruning_margin, margin)


class TestRunStats:
    def test_empty_summary(self):
        assert RunStats().summary() == "no lengths processed"

    def test_mode_counters(self):
        run = RunStats()
        run.add(make_stats("initial"))
        run.add(make_stats("submp", length=17))
        run.add(make_stats("submp-partial", length=18))
        run.add(make_stats("full-recompute", length=19))
        assert run.n_fast_lengths == 1
        assert run.n_partial_recomputes == 1
        assert run.n_full_recomputes == 1

    def test_total_seconds(self):
        run = RunStats()
        run.add(make_stats("initial"))
        run.add(make_stats("submp", length=17))
        assert run.total_seconds == pytest.approx(0.2)

    def test_submp_sizes_skip_initial(self):
        run = RunStats()
        run.add(make_stats("initial", submp_size=100))
        run.add(make_stats("submp", length=17, submp_size=80))
        run.add(make_stats("full-recompute", length=18, submp_size=99))
        assert run.submp_sizes() == [80, 99]

    def test_summary_mentions_modes(self):
        run = RunStats()
        run.add(make_stats("initial"))
        run.add(make_stats("submp", length=17))
        text = run.summary()
        assert "pure-subMP" in text and "full recomputes" in text
