"""Tests for the Eq. 3 distance-profile kernel and the exclusion zone."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distance.profile import (
    apply_exclusion_zone,
    correlation_from_qt,
    distance_profile_from_qt,
    exclusion_half_width,
    naive_distance_profile,
)
from repro.distance.sliding import moving_mean_std, sliding_dot_product
from repro.exceptions import InvalidParameterError


def fast_profile(series, start, length):
    mu, sigma = moving_mean_std(series, length)
    qt = sliding_dot_product(series[start : start + length], series)
    return distance_profile_from_qt(
        qt, length, float(mu[start]), float(sigma[start]), mu, sigma
    )


class TestDistanceProfileFromQt:
    def test_matches_naive(self, rng):
        t = rng.standard_normal(150)
        for start, length in [(0, 10), (25, 20), (100, 16)]:
            np.testing.assert_allclose(
                fast_profile(t, start, length),
                naive_distance_profile(t, start, length),
                atol=1e-6,
            )

    def test_self_distance_is_zero(self, rng):
        t = rng.standard_normal(80)
        profile = fast_profile(t, 30, 12)
        assert profile[30] == pytest.approx(0.0, abs=1e-6)

    def test_constant_query(self):
        t = np.concatenate([np.full(20, 2.0), np.random.default_rng(1).standard_normal(40)])
        profile = fast_profile(t, 0, 10)
        naive = naive_distance_profile(t, 0, 10)
        np.testing.assert_allclose(profile, naive, atol=1e-6)

    def test_constant_windows_in_series(self):
        t = np.concatenate(
            [np.random.default_rng(2).standard_normal(40), np.full(20, -1.0)]
        )
        np.testing.assert_allclose(
            fast_profile(t, 5, 8), naive_distance_profile(t, 5, 8), atol=1e-6
        )

    def test_invalid_length(self):
        with pytest.raises(InvalidParameterError):
            distance_profile_from_qt(np.zeros(3), 0, 0.0, 1.0, np.zeros(3), np.ones(3))

    @given(st.integers(0, 2**31 - 1), st.integers(4, 24))
    @settings(max_examples=25, deadline=None)
    def test_matches_naive_property(self, seed, length):
        rng = np.random.default_rng(seed)
        n = length * 3 + int(rng.integers(0, 40))
        t = rng.standard_normal(n)
        start = int(rng.integers(0, n - length + 1))
        np.testing.assert_allclose(
            fast_profile(t, start, length),
            naive_distance_profile(t, start, length),
            atol=1e-5,
        )


class TestCorrelationFromQt:
    def test_self_correlation_is_one(self, rng):
        t = rng.standard_normal(60)
        mu, sigma = moving_mean_std(t, 10)
        qt = sliding_dot_product(t[20:30], t)
        corr = correlation_from_qt(qt, 10, float(mu[20]), float(sigma[20]), mu, sigma)
        assert corr[20] == pytest.approx(1.0, abs=1e-9)

    def test_clipped_to_unit_interval(self, rng):
        t = rng.standard_normal(60)
        mu, sigma = moving_mean_std(t, 10)
        qt = sliding_dot_product(t[0:10], t)
        corr = correlation_from_qt(qt, 10, float(mu[0]), float(sigma[0]), mu, sigma)
        assert np.all(corr <= 1.0) and np.all(corr >= -1.0)


class TestExclusionZone:
    def test_masks_center(self):
        profile = np.zeros(20)
        apply_exclusion_zone(profile, 10, 3)
        assert np.isinf(profile[8:13]).all()
        assert np.isfinite(profile[:8]).all()
        assert np.isfinite(profile[13:]).all()

    def test_clamps_at_edges(self):
        profile = np.zeros(10)
        apply_exclusion_zone(profile, 0, 4)
        assert np.isinf(profile[:4]).all()
        apply_exclusion_zone(profile, 9, 4)
        assert np.isinf(profile[6:]).all()

    def test_custom_value(self):
        profile = np.zeros(10)
        apply_exclusion_zone(profile, 5, 2, value=-1.0)
        assert profile[5] == -1.0

    def test_half_width(self):
        assert exclusion_half_width(10) == 5
        assert exclusion_half_width(11) == 6
        assert exclusion_half_width(2) == 1
