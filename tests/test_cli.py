"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_motifs_defaults(self):
        args = build_parser().parse_args(["motifs"])
        assert args.dataset == "ECG"
        assert args.l_min == 64

    def test_bench_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("ECG", "GAP", "ASTRO", "EMG", "EEG"):
            assert name in out

    def test_motifs_synthetic(self, capsys):
        code = main(
            [
                "motifs",
                "--dataset", "ECG",
                "--points", "1500",
                "--l-min", "32",
                "--l-max", "36",
                "--p", "10",
                "--top", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "length" in out
        assert "processed 5 lengths" in out

    def test_sets_synthetic(self, capsys):
        code = main(
            [
                "sets",
                "--dataset", "EEG",
                "--points", "1500",
                "--l-min", "32",
                "--l-max", "36",
                "--k", "3",
                "--p", "10",
            ]
        )
        assert code == 0
        assert "motif sets" in capsys.readouterr().out

    def test_motifs_from_csv(self, tmp_path, capsys):
        path = tmp_path / "series.txt"
        rng = np.random.default_rng(0)
        np.savetxt(path, rng.standard_normal(600))
        code = main(
            ["motifs", "--csv", str(path), "--l-min", "16", "--l-max", "18", "--p", "5"]
        )
        assert code == 0

    def test_discords_synthetic(self, capsys):
        code = main(
            [
                "discords",
                "--dataset", "EEG",
                "--points", "1200",
                "--l-min", "20",
                "--l-max", "24",
                "--top", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "start" in out

    def test_motifs_export(self, tmp_path, capsys):
        import json

        target = tmp_path / "run.json"
        code = main(
            [
                "motifs",
                "--dataset", "ECG",
                "--points", "1200",
                "--l-min", "24",
                "--l-max", "26",
                "--p", "10",
                "--export", str(target),
            ]
        )
        assert code == 0
        data = json.loads(target.read_text())
        assert data["l_min"] == 24
        assert set(data["motif_pairs"]) == {"24", "25", "26"}

    def test_segment_synthetic(self, capsys):
        code = main(
            [
                "segment",
                "--dataset", "GAP",
                "--points", "1600",
                "--l-min", "24",
                "--regimes", "2",
            ]
        )
        assert code == 0
        assert "boundary" in capsys.readouterr().out

    def test_snippets_synthetic(self, capsys):
        code = main(
            [
                "snippets",
                "--dataset", "ECG",
                "--points", "1600",
                "--l-min", "32",
                "--k", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "coverage" in out

    def test_stream_synthetic(self, capsys):
        code = main(
            [
                "stream",
                "--dataset", "ECG",
                "--points", "800",
                "--l-min", "24",
                "--l-max", "28",
                "--init", "200",
                "--chunk", "100",
                "--max-points", "400",
                "--snapshot-every", "200",
                "--k-discords", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# streaming 600 points" in out
        assert "window-evicted" in out
        assert "# snapshot @" in out
        assert "# final window [400, 800)" in out
        assert "normalized" in out  # motif + discord tables printed

    def test_stream_from_stdin(self, tmp_path, capsys, monkeypatch):
        import io

        rng = np.random.default_rng(0)
        series = np.cumsum(rng.standard_normal(500))
        text = "\n".join(f"{v:.9f}" for v in series)
        monkeypatch.setattr("sys.stdin", io.StringIO(text))
        code = main(
            ["stream", "--csv", "-", "--l-min", "16", "--l-max", "20",
             "--init", "100", "--chunk", "200"]
        )
        assert code == 0
        assert "# final window [0, 500)" in capsys.readouterr().out

    def test_stream_rejects_short_feed(self, capsys):
        code = main(
            ["stream", "--dataset", "ECG", "--points", "150",
             "--l-min", "24", "--l-max", "28", "--init", "200"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_error_reported_cleanly(self, capsys):
        code = main(
            ["motifs", "--dataset", "ECG", "--points", "100",
             "--l-min", "64", "--l-max", "96"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestTrace:
    def test_trace_flag_available_on_every_subcommand(self):
        parser = build_parser()
        for command in (
            "motifs", "profile", "discords", "sets",
            "segment", "snippets", "datasets", "bench",
        ):
            extra = ["fig8"] if command == "bench" else []
            args = parser.parse_args([command, *extra, "--trace"])
            assert args.trace is True
            assert args.trace_format == "json"
            assert args.trace_out is None

    def test_trace_emits_json_after_output(self, capsys):
        import json

        from repro import obs

        was_enabled = obs.enabled()
        code = main(
            [
                "profile",
                "--dataset", "ECG",
                "--points", "1000",
                "--length", "32",
                "--trace",
            ]
        )
        assert code == 0
        # --trace must restore whatever the ambient state was
        assert obs.enabled() == was_enabled
        out = capsys.readouterr().out
        report = json.loads(out[out.index("\n{"):])
        assert report["counters"]["engine.rows"] == 1000 - 32 + 1
        assert "engine.stomp" in report["spans"]

    def test_trace_out_writes_clean_json(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "trace.json"
        code = main(
            [
                "motifs",
                "--dataset", "ECG",
                "--points", "1000",
                "--l-min", "24",
                "--l-max", "26",
                "--p", "10",
                "--trace",
                "--trace-out", str(out_file),
            ]
        )
        assert code == 0
        assert f"trace report written to {out_file}" in capsys.readouterr().out
        report = json.loads(out_file.read_text())
        assert 0.0 <= report["derived"]["pruning_power"] <= 1.0
        assert report["enabled"] is True

    def test_trace_pretty_format(self, capsys):
        code = main(
            [
                "profile",
                "--dataset", "ECG",
                "--points", "900",
                "--length", "24",
                "--trace",
                "--trace-format", "pretty",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert "engine.rows" in out

    def test_trace_emitted_even_on_failure(self, capsys):
        code = main(
            [
                "motifs",
                "--dataset", "ECG",
                "--points", "100",
                "--l-min", "64",
                "--l-max", "96",
                "--trace",
            ]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        # a (possibly empty) trace report still lands on stdout
        assert '"counters"' in captured.out
