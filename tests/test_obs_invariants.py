"""Property-based invariants of the observability counters (hypothesis).

The counters are only trustworthy if they obey the accounting identities
of the algorithms they instrument: per length, pruned + recomputed
profiles partition the total; listDP hits and misses partition the
lookups; and two engines doing identical work report identical work.
A final test closes the loop with Figure 9: the ``--trace`` report's
pruning power must reproduce the fraction computed by the standalone
``pruning_margins`` analysis.
"""

import json
import re

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.analysis.pruning import pruning_margins
from repro.cli import main
from repro.core.discords_variable import find_discords_pruned
from repro.core.valmod import Valmod
from repro.obs.report import derived_metrics
from repro.datasets.registry import load_dataset
from repro.matrixprofile.parallel import parallel_stomp
from repro.matrixprofile.stomp import stomp

_LENGTH = re.compile(r"^submp\.profiles\.total\.l(\d+)$")


@pytest.fixture(autouse=True)
def clean_tracer():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _traced_counters(fn):
    with obs.tracing(True):
        obs.reset()
        fn()
        return dict(obs.snapshot()["counters"])


class TestCounterAccounting:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_valid_invalid_partition_total_per_length(self, seed):
        rng = np.random.default_rng(seed)
        t = rng.standard_normal(320)
        counters = _traced_counters(
            lambda: Valmod(t, 18, 24, p=12).run()
        )
        lengths = [int(m.group(1)) for m in map(_LENGTH.match, counters) if m]
        assert lengths, "no per-length counters recorded"
        for length in lengths:
            total = counters[f"submp.profiles.total.l{length}"]
            valid = counters.get(f"submp.profiles.valid.l{length}", 0)
            invalid = counters.get(f"submp.profiles.invalid.l{length}", 0)
            recomputed = counters.get(f"submp.profiles.recomputed.l{length}", 0)
            assert valid + invalid == total
            assert 0 <= recomputed <= invalid
        # ...and the aggregates agree with the per-length sums.
        assert counters["submp.profiles.total"] == sum(
            counters[f"submp.profiles.total.l{n}"] for n in lengths
        )
        assert counters["submp.profiles.valid"] + counters[
            "submp.profiles.invalid"
        ] == counters["submp.profiles.total"]

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_listdp_hits_and_misses_partition_lookups(self, seed):
        rng = np.random.default_rng(seed)
        t = rng.standard_normal(300)
        counters = _traced_counters(
            lambda: Valmod(t, 16, 21, p=10).run()
        )
        assert counters["listdp.lookups"] > 0
        assert (
            counters.get("listdp.hits", 0) + counters.get("listdp.misses", 0)
            == counters["listdp.lookups"]
        )

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_stomp_and_parallel_stomp_report_identical_work(self, seed):
        rng = np.random.default_rng(seed)
        t = rng.standard_normal(280).cumsum()
        length = 16

        def only_engine(counters):
            return {
                k: v
                for k, v in counters.items()
                if k.startswith(("engine.", "mass."))
            }

        serial = only_engine(_traced_counters(lambda: stomp(t, length)))
        chunked = only_engine(
            _traced_counters(
                lambda: parallel_stomp(t, length, n_jobs=1, n_chunks=3)
            )
        )
        assert serial["engine.cells"] > 0
        assert serial == chunked

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_discord_pruned_recomputed_partition_swept(self, seed):
        # The MAD driver's accounting identity: every scanned length is
        # either pruned or recomputed, never both, never neither —
        # mirroring the ComputeSubMP valid/invalid partition above.
        rng = np.random.default_rng(seed)
        t = rng.standard_normal(260)
        t[100:114] += 3.0 * np.hanning(14)
        l_min, l_max = 10, 20
        counters = _traced_counters(
            lambda: find_discords_pruned(t, l_min, l_max, k=2)
        )
        swept = counters["discords.lengths.swept"]
        assert swept == l_max - l_min + 1
        pruned = counters.get("discords.profiles.pruned", 0)
        recomputed = counters.get("discords.profiles.recomputed", 0)
        assert pruned + recomputed == swept
        # Per-length: exactly one of the two markers per scanned length.
        for length in range(l_min, l_max + 1):
            p_l = counters.get(f"discords.profiles.pruned.l{length}", 0)
            r_l = counters.get(f"discords.profiles.recomputed.l{length}", 0)
            assert p_l + r_l == 1
        # ...and the derived report metric is the pruned fraction.
        assert derived_metrics(counters).get(
            "discords_pruning_power"
        ) == pytest.approx(pruned / swept)


class TestFigure9Consistency:
    def test_trace_pruning_power_matches_pruning_margins(self, tmp_path, capsys):
        """The --trace report reproduces Figure 9's pruned fraction.

        ``pruning_margins`` computes maxLB - minDist per profile after
        advancing the listDP store one length; profiles with a positive
        margin are exactly the "valid" profiles ComputeSubMP counts.  The
        two paths share no code beyond ComputeSubMP itself, so agreement
        pins the counter semantics to the paper's figure.
        """
        series = load_dataset("ECG", 1200, seed=0)
        margins = pruning_margins(series, 24, 25, p=20)
        fraction = float((margins > 0).mean())

        csv = tmp_path / "ecg.csv"
        np.savetxt(csv, series)
        out = tmp_path / "trace.json"
        code = main(
            [
                "motifs",
                "--csv", str(csv),
                "--l-min", "24",
                "--l-max", "25",
                "--p", "20",
                "--trace",
                "--trace-out", str(out),
            ]
        )
        capsys.readouterr()
        assert code == 0
        report = json.loads(out.read_text())
        assert report["derived"]["pruning_power.l25"] == pytest.approx(
            fraction, abs=1e-12
        )
        # sanity: the run pruned a nontrivial share of the profiles
        assert 0.0 < report["derived"]["pruning_power.l25"] <= 1.0
