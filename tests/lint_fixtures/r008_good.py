"""R008 good fixture: statistics and FFTs flow through SeriesContext."""

from repro.kernels.context import ensure_context


def stats(series, length):
    ctx = ensure_context(series)
    return ctx.moving_mean_std(length)


def dots(series, query):
    # Cached series spectrum: no direct np.fft call needed.
    return ensure_context(series).sliding_dot_product(query)
