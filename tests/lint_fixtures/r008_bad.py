"""R008 bad fixture: raw stats/FFT primitives outside distance/kernels."""

import numpy as np

from repro.distance.sliding import moving_mean_std


def spectrum(series):
    return np.fft.rfft(series)


def stats(series, length):
    return moving_mean_std(series, length)
