"""Good fixture for R005: sorted iteration, module-level worker."""
from concurrent.futures import ProcessPoolExecutor


def _work(job):
    return job * 2


def run():
    jobs = sorted({3, 1, 2})
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(_work, job) for job in jobs]
    return [f.result() for f in futures]
