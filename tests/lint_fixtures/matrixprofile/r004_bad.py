"""Bad fixture for R004: inline exclusion-zone arithmetic."""


def trivial_zone(length):
    zone = length // 2
    return zone
