"""Bad fixture for R001: sqrt over a correlation expression, no clip."""
import numpy as np


def dist_from_corr(corr, length):
    return np.sqrt(2.0 * length * (1.0 - corr))
