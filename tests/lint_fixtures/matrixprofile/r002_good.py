"""Good fixture for R002: the denominator is clamped away from zero."""
import numpy as np

EPS = 1e-13


def normalize(qt, sigma, length):
    safe = np.maximum(sigma, EPS)
    return qt / (length * safe)


def normalize_errstate(qt, sigma, length):
    with np.errstate(divide="ignore", invalid="ignore"):
        return qt / (length * sigma)
