"""Bad fixture for R006: dtype-less allocation and a narrow float."""
import numpy as np


def allocate(n):
    profile = np.empty(n)
    small = np.zeros(n, dtype=np.float32)
    return profile, small
