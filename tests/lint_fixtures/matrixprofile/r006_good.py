"""Good fixture for R006: every allocation pins its dtype."""
import numpy as np


def allocate(n):
    profile = np.empty(n, dtype=np.float64)
    index = np.full(n, -1, dtype=np.int64)
    mask = np.zeros(n, dtype=bool)
    return profile, index, mask
