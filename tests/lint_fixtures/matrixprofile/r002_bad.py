"""Bad fixture for R002: raw division by a sigma-like denominator."""
import numpy as np


def normalize(qt, sigma, length):
    return qt / (length * sigma)
