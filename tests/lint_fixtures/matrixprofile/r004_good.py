"""Good fixture for R004: the central helper owns the zone math."""
from repro.matrixprofile.exclusion import exclusion_zone_half_width


def trivial_zone(length):
    return exclusion_zone_half_width(length)
