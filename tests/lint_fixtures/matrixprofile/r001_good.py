"""Good fixture for R001: radicand clamped before the sqrt."""
import numpy as np


def dist_from_corr(corr, length):
    np.clip(corr, -1.0, 1.0, out=corr)
    return np.sqrt(np.maximum(2.0 * length * (1.0 - corr), 0.0))
