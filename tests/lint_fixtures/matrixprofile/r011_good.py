"""Good: the pragma suppresses a real R004 diagnostic."""


def zone(length):
    return length // 2  # repro-lint: ignore[R004]
