"""Bad fixture for R005: set iteration order + lambda shipped to a pool."""
from concurrent.futures import ProcessPoolExecutor


def run():
    jobs = {3, 1, 2}
    results = []
    with ProcessPoolExecutor() as pool:
        for job in jobs:
            results.append(pool.submit(lambda: job))
    return results
