"""R009 fixture: store import outside the façade + wholesale composition."""

from repro.features.store import FeatureStore  # noqa: F401  (a) store is façade-private
from repro.core.valmod import Valmod  # noqa: F401  first family: allowed
from repro.core.discords import find_discords  # noqa: F401  (b) second family


def analyze(series):
    run = Valmod(series, 16, 32).run()
    return run, find_discords(series, 16, 32), FeatureStore("/tmp/cache")
