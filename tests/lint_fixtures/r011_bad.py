"""Bad: pragmas that suppress nothing."""

x = 1  # repro-lint: ignore[R004]
y = 2  # repro-lint: ignore[R999]
