"""R009 fixture: one entry point — composition stays behind the façade."""

from repro.features import extract_features


def analyze(series):
    features = extract_features(series, 16, 32, include=("discords",))
    return features.best_motif, features.discords
