"""Bad: emission names the registry does not declare."""


class _Obs:
    def add(self, name, value):
        pass


obs = _Obs()


def record(n):
    obs.add("submp.profiles.totall", n)  # typo: doubled final letter
    name = "submp.profiles.total"
    obs.add(name, n)  # non-literal name: statically unverifiable
