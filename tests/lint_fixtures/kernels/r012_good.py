"""Good: float32 selects candidates, float64 verifies every escape."""

import numpy as np


def verified_selection(series, c1):
    buf = series * c1
    buf32 = buf.astype(np.float32)
    j = int(np.argmax(buf32))  # index of the demoted winner
    return float(buf[j])  # value re-read from the float64 buffer


def rebound_buffer(series):
    x = series.astype(np.float32)
    order = np.argsort(x)
    x = series[order] * 1.0  # rebinding kills the float32 definition
    return x


def scratch_store(series):
    buf32 = np.empty(series.size, dtype=np.float32)
    np.multiply(series, 2.0, out=buf32)
    buf32[0] = np.float32(0.0)  # float32 scratch may hold float32
    j = int(np.argmax(buf32))
    return float(series[j])
