"""Bad: float32 values escape the kernel without a float64 verify."""

import numpy as np


def return_escape(series):
    scores = series.astype(np.float32)
    return scores  # demoted buffer returned as-is


def store_escape(series, profile):
    scores = series.astype(np.float32)
    profile[0] = scores[0]  # demoted cell smuggled into the f64 output
    return profile


def compare_escape(series, best):
    scores = series.astype(np.float32)
    if scores[0] > best:  # demoted score ranked against f64 state
        return float(best)
    return float(best)
