"""Good: contracts or explicit opt-outs on every public function."""

from repro.lint.contracts import positive_int, require, series_like

__all__ = [
    "ContractedState",
    "DispatchRegistry",
    "KernelConfig",
    "contracted_kernel",
    "dispatch_helper",
]


class KernelConfig:
    pass


class ContractedState:
    @require(series=series_like(), length=positive_int())
    def __init__(self, series, length):
        self.series = series
        self.length = length


class DispatchRegistry:
    def __init__(self):  # repro-lint: ignore[R013] - no parameters to predicate
        self.entries = {}


@require(length=positive_int())
def contracted_kernel(series, length):
    return series[:length]


def dispatch_helper(name):  # repro-lint: ignore[R013] - pure dispatch
    return name
