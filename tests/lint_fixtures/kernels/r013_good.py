"""Good: contracts or explicit opt-outs on every public function."""

from repro.lint.contracts import positive_int, require

__all__ = ["KernelConfig", "contracted_kernel", "dispatch_helper"]


class KernelConfig:
    pass


@require(length=positive_int())
def contracted_kernel(series, length):
    return series[:length]


def dispatch_helper(name):  # repro-lint: ignore[R013] - pure dispatch
    return name
