"""Bad: public __all__ callables with no contract and no opt-out."""

__all__ = ["UncontractedState", "uncontracted_kernel"]


class UncontractedState:
    def __init__(self, series, length):
        self.series = series
        self.length = length


def uncontracted_kernel(series, length):
    return series[:length]
