"""Bad: a public __all__ function with no contract and no opt-out."""

__all__ = ["uncontracted_kernel"]


def uncontracted_kernel(series, length):
    return series[:length]
