"""R007 good fixture: obs keeps to stdlib, itself, and repro.exceptions."""

import threading

from repro import obs
from repro.exceptions import InvalidParameterError
from repro.obs.tracer import Tracer


def fine():
    return threading, obs, InvalidParameterError, Tracer
