"""R007 bad fixture: an obs module reaching into kernel code."""

import repro.core.compute_mp

from repro.matrixprofile.stomp import stomp


def leak():
    return stomp, repro.core.compute_mp
