"""Good: every emitted name is declared in repro.obs.registry."""


class _Obs:
    def add(self, name, value):
        pass

    def gauge(self, name, value):
        pass

    def span(self, name):
        pass


obs = _Obs()


def record(n, length):
    obs.add("submp.profiles.total", n)
    obs.add(f"submp.profiles.valid.l{length}", n)
    obs.gauge("kernel.block_rows", n)
    with obs.span("chunk"):
        pass
