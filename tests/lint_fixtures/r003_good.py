"""Good fixture for R003: errors go through the repro hierarchy."""
from repro.exceptions import InvalidParameterError


def check(length):
    if length <= 0:
        raise InvalidParameterError(f"bad length {length}")
    return length
