"""Bad fixture for R003: bare ValueError and assert in library code."""


def check(length):
    if length <= 0:
        raise ValueError(f"bad length {length}")
    assert length < 10**9
    return length
