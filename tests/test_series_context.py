"""SeriesContext: bitwise equivalence, cache semantics, sweep counters.

Three layers of guarantees, strongest first:

1.  **Bitwise transparency** — every cached primitive returns exactly the
    array the uncached call would have produced, on adversarial inputs
    (flat shelves, high-magnitude constants) and across full length
    sweeps (hypothesis drives the shapes).
2.  **Cache mechanics** — hit/miss/build/reuse counters, ``ensure``
    adoption rules, read-only cached arrays.
3.  **The sweep invariant** — a VALMOD l_min→l_max run performs exactly
    one ``moving_mean_std`` per length and one series FFT, proven by
    obs counters, with output bitwise identical to a cache-off run.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core.valmod import Valmod
from repro.distance.sliding import (
    DIRECT_DOT_MAX,
    moving_mean_std,
    prefix_sums,
    sliding_dot_product,
)
from repro.kernels import SeriesContext, ensure_context


def _series_with_shelf(seed, n, shelf):
    """Random walk with an optional flat shelf and magnitude offset."""
    rng = np.random.default_rng(seed)
    series = rng.standard_normal(n).cumsum()
    if shelf:
        lo = n // 4
        series[lo : lo + n // 3] = series[lo]
    return series


class TestBitwiseEquivalence:
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(64, 300),
        shelf=st.booleans(),
        offset=st.sampled_from([0.0, 1.0, 1e6, -1e8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_moving_mean_std_full_length_sweep(self, seed, n, shelf, offset):
        """Cached stats == uncached stats, bit for bit, for every length
        the series admits — including flat shelves (sigma == 0 windows)
        and high-magnitude constant offsets (cancellation territory)."""
        series = _series_with_shelf(seed, n, shelf) + offset
        ctx = SeriesContext(series)
        for length in range(2, n + 1, max(1, n // 16)):
            mu_c, sigma_c = ctx.moving_mean_std(length)
            mu_u, sigma_u = moving_mean_std(series, length)
            np.testing.assert_array_equal(mu_c, mu_u)
            np.testing.assert_array_equal(sigma_c, sigma_u)
            # And a second request returns the identical cached arrays.
            mu_again, sigma_again = ctx.moving_mean_std(length)
            assert mu_again is mu_c and sigma_again is sigma_c

    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(150, 400),
        qlen=st.integers(4, 130),
    )
    @settings(max_examples=40, deadline=None)
    def test_sliding_dot_product_bitwise(self, seed, n, qlen):
        """Cached-spectrum dot products == uncached, on both sides of the
        direct/FFT threshold (DIRECT_DOT_MAX)."""
        series = _series_with_shelf(seed, n, shelf=False)
        query = series[: qlen]
        ctx = SeriesContext(series)
        np.testing.assert_array_equal(
            ctx.sliding_dot_product(query), sliding_dot_product(query, series)
        )
        # Second call reuses the plan; result must not change.
        np.testing.assert_array_equal(
            ctx.sliding_dot_product(query), sliding_dot_product(query, series)
        )

    def test_prefix_sums_bitwise(self):
        series = _series_with_shelf(11, 200, shelf=True)
        ctx = SeriesContext(series)
        cached = ctx.prefix_sums()
        uncached = prefix_sums(ctx.series)
        np.testing.assert_array_equal(cached[0], uncached[0])
        np.testing.assert_array_equal(cached[1], uncached[1])
        assert ctx.prefix_sums()[0] is cached[0]


class TestEnsureSemantics:
    def test_ensure_adopts_matching_context(self):
        series = _series_with_shelf(0, 100, shelf=False)
        ctx = SeriesContext(series)
        assert SeriesContext.ensure(series, ctx) is ctx
        assert ensure_context(series, ctx) is ctx
        # The validated internal buffer matches too (shared memory).
        assert ensure_context(ctx.series, ctx) is ctx
        # An equal copy in a distinct buffer is still a match.
        assert ensure_context(series.copy(), ctx) is ctx

    def test_ensure_rejects_mismatched_context(self):
        series = _series_with_shelf(0, 100, shelf=False)
        other = _series_with_shelf(1, 100, shelf=False)
        ctx = SeriesContext(series)
        fresh = ensure_context(other, ctx)
        assert fresh is not ctx
        assert fresh.matches(other)
        assert not ctx.matches(other)
        assert not ctx.matches(series[:50])

    def test_ensure_without_context_builds_one(self):
        series = _series_with_shelf(2, 80, shelf=False)
        ctx = ensure_context(series)
        assert isinstance(ctx, SeriesContext)
        assert ctx.cached_stat_lengths == ()
        assert ctx.cached_fft_sizes == ()


class TestCacheMechanics:
    def test_stats_counters(self):
        series = _series_with_shelf(3, 120, shelf=False)
        ctx = SeriesContext(series)
        with obs.tracing(True):
            obs.reset()
            ctx.moving_mean_std(16)
            ctx.moving_mean_std(16)
            ctx.moving_mean_std(24)
            counters = obs.snapshot()["counters"]
        obs.reset()
        obs.disable()
        assert counters["stats.cache.misses"] == 2
        assert counters["stats.cache.hits"] == 1
        assert ctx.cached_stat_lengths == (16, 24)

    def test_fft_plan_counters(self):
        series = _series_with_shelf(4, 400, shelf=False)
        ctx = SeriesContext(series)
        long_query = series[: DIRECT_DOT_MAX + 8]
        with obs.tracing(True):
            obs.reset()
            ctx.sliding_dot_product(long_query)
            ctx.sliding_dot_product(long_query[::-1].copy())
            counters = obs.snapshot()["counters"]
        obs.reset()
        obs.disable()
        assert counters["fft.plan.build"] == 1
        assert counters["fft.plan.reuse"] == 1
        assert len(ctx.cached_fft_sizes) == 1

    def test_short_queries_skip_fft_entirely(self):
        series = _series_with_shelf(5, 300, shelf=False)
        ctx = SeriesContext(series)
        with obs.tracing(True):
            obs.reset()
            ctx.sliding_dot_product(series[:DIRECT_DOT_MAX])
            counters = obs.snapshot()["counters"]
        obs.reset()
        obs.disable()
        assert counters.get("fft.plan.build", 0) == 0
        assert ctx.cached_fft_sizes == ()

    def test_cached_arrays_are_readonly(self):
        series = _series_with_shelf(6, 100, shelf=False)
        ctx = SeriesContext(series)
        mu, sigma = ctx.moving_mean_std(10)
        with pytest.raises(ValueError):
            mu[0] = 0.0
        with pytest.raises(ValueError):
            sigma[0] = 0.0


class TestValmodSweepInvariant:
    """The acceptance proof: one stats pass per length, one series FFT."""

    LENGTHS = range(66, 71)  # all above DIRECT_DOT_MAX: the FFT path runs

    @pytest.fixture(scope="class")
    def series(self):
        rng = np.random.default_rng(0)
        return rng.standard_normal(400).cumsum()

    def test_one_stats_pass_per_length_and_one_fft(self, series):
        assert min(self.LENGTHS) > DIRECT_DOT_MAX
        with obs.tracing(True):
            obs.reset()
            Valmod(series, min(self.LENGTHS), max(self.LENGTHS), p=30).run()
            counters = obs.snapshot()["counters"]
        obs.reset()
        obs.disable()
        assert counters["stats.cache.misses"] == len(self.LENGTHS)
        assert counters["fft.plan.build"] == 1
        assert counters["mass.fft_calls"] == 1

    def test_cache_off_output_is_bitwise_identical(self, series):
        l_min, l_max = min(self.LENGTHS), max(self.LENGTHS)
        on = Valmod(series, l_min, l_max, p=30, stats_cache=True).run()
        off = Valmod(series, l_min, l_max, p=30, stats_cache=False).run()
        np.testing.assert_array_equal(on.valmp.distances, off.valmp.distances)
        np.testing.assert_array_equal(
            on.valmp.norm_distances, off.valmp.norm_distances
        )
        np.testing.assert_array_equal(on.valmp.lengths, off.valmp.lengths)
        np.testing.assert_array_equal(on.valmp.indices, off.valmp.indices)
        assert sorted(on.motif_pairs) == sorted(off.motif_pairs)
        for length, pair in on.motif_pairs.items():
            assert pair == off.motif_pairs[length], f"length {length}"

    def test_cache_off_disables_sweep_sharing(self, series):
        """The ablation knob really ablates: no cross-call stats reuse."""
        l_min, l_max = min(self.LENGTHS), max(self.LENGTHS)
        with obs.tracing(True):
            obs.reset()
            Valmod(series, l_min, l_max, p=30, stats_cache=False).run()
            counters = obs.snapshot()["counters"]
        obs.reset()
        obs.disable()
        # Throwaway contexts: at least one fresh stats pass per length,
        # and the series FFT is re-planned instead of reused.
        assert counters["stats.cache.misses"] >= len(self.LENGTHS)
        assert counters["fft.plan.build"] >= 1
