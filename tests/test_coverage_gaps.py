"""Edge-branch tests for paths the main suites don't reach."""

import numpy as np
import pytest

from repro.analysis.pruning import pruning_margins
from repro.core.valmod import Valmod
from repro.datasets import generate_epg, load_dataset
from repro.datasets.registry import dataset_spec
from repro.exceptions import InvalidParameterError
from repro.io import load_series, save_series


class TestKeepMarginsConsistency:
    def test_driver_margins_match_analysis_helper(self, structured_series):
        """Valmod(keep_margins=True) must record the same margins the
        standalone analysis helper computes."""
        run = Valmod(structured_series, 40, 42, p=10, keep_margins=True).run()
        recorded = next(
            s.pruning_margin
            for s in run.stats.per_length
            if s.length == 42 and s.pruning_margin is not None
        )
        direct = pruning_margins(structured_series, 40, 42, p=10)
        finite = np.isfinite(recorded)
        np.testing.assert_allclose(
            recorded[finite], direct[finite], atol=1e-9
        )


class TestDatasetKwargsPassThrough:
    def test_registry_forwards_generator_kwargs(self):
        fast = load_dataset("ECG", 2000, seed=0, beat_length=20)
        slow = load_dataset("ECG", 2000, seed=0, beat_length=100)
        assert not np.array_equal(fast, slow)

    def test_epg_lengths_respected(self):
        series, truth = generate_epg(
            4000, seed=1, probing_length=64, ingestion_length=96, occurrences=2
        )
        assert truth.probing_length == 64
        assert truth.ingestion_length == 96
        assert len(truth.probing_positions) == 2

    def test_spec_metadata_complete(self):
        for name in ("ECG", "GAP", "ASTRO", "EMG", "EEG"):
            spec = dataset_spec(name)
            assert spec.paper_points > 0
            assert spec.description


class TestIoEdges:
    def test_npy_2d_is_raveled(self, tmp_path, rng):
        path = tmp_path / "grid.npy"
        np.save(path, rng.standard_normal((10, 5)))
        out = load_series(path)
        assert out.shape == (50,)

    def test_save_series_rejects_nan(self, tmp_path):
        from repro.exceptions import InvalidSeriesError

        with pytest.raises(InvalidSeriesError):
            save_series(tmp_path / "bad.txt", np.array([1.0, np.nan]))

    def test_delimiter_handling(self, tmp_path, rng):
        path = tmp_path / "semi.csv"
        data = rng.standard_normal((20, 2))
        np.savetxt(path, data, delimiter=";")
        out = load_series(path, column=0, delimiter=";")
        np.testing.assert_allclose(out, data[:, 0], atol=1e-9)


class TestValmodCornerCases:
    def test_track_top_k_snapshots_present(self, structured_series):
        run = Valmod(structured_series, 40, 44, p=10, track_top_k=3).run()
        pairs = run.best_k_pairs()
        assert 1 <= len(pairs) <= 3
        for record in pairs:
            assert record.profile_a is not None
            assert record.profile_a.length == record.length

    def test_margins_absent_by_default(self, noise_series):
        run = Valmod(noise_series, 16, 18, p=4).run()
        assert all(
            s.pruning_margin is None for s in run.stats.per_length
        )

    def test_recompute_fraction_one_avoids_full_recomputes(self, noise_series):
        run = Valmod(noise_series, 16, 22, p=2, recompute_fraction=1.0).run()
        assert run.stats.n_full_recomputes == 0


class TestSparkBucketing:
    def test_bucket_means_preserve_monotonicity(self):
        from repro.viz import sparkline

        out = sparkline(np.linspace(0, 1, 1000), width=40)
        assert len(out) == 40
        assert list(out) == sorted(out)


class TestStreamingErrorPaths:
    def test_not_computed_guard(self, noise_series):
        from repro.exceptions import NotComputedError
        from repro.matrixprofile import StreamingMatrixProfile

        smp = StreamingMatrixProfile(noise_series[:200], length=16)
        smp._profile = None  # simulate a half-initialized instance
        with pytest.raises(NotComputedError):
            smp.matrix_profile()

    @pytest.mark.parametrize("length", [0, 1, -4, 101, 10_000])
    def test_invalid_lengths_rejected(self, noise_series, length):
        from repro.matrixprofile import StreamingMatrixProfile

        with pytest.raises(InvalidParameterError):
            StreamingMatrixProfile(noise_series[:200], length=length)

    def test_non_finite_seed_series_rejected(self):
        from repro.exceptions import InvalidSeriesError
        from repro.matrixprofile import StreamingMatrixProfile

        bad = np.ones(100)
        bad[40] = np.nan
        with pytest.raises(InvalidSeriesError):
            StreamingMatrixProfile(bad, length=10)
