"""Tests for Algorithm 4 (ComputeSubMP) — exactness of the fast path."""

import numpy as np
import pytest

from repro.core.compute_mp import compute_matrix_profile
from repro.core.compute_submp import compute_submp
from repro.matrixprofile import stomp


def advance(series, l_min, target, p, recompute_fraction=0.5):
    _, store = compute_matrix_profile(series, l_min, p)
    result = None
    for length in range(l_min + 1, target + 1):
        result = compute_submp(
            series, store, length, recompute_fraction=recompute_fraction
        )
    return result


class TestMotifExactness:
    @pytest.mark.parametrize("target", [17, 20, 24])
    def test_found_motif_matches_stomp_noise(self, noise_series, target):
        result = advance(noise_series, 16, target, p=10)
        reference = stomp(noise_series, target).motif_pair()
        if result.found_motif:
            assert result.best_distance == pytest.approx(
                reference.distance, abs=1e-6
            )

    @pytest.mark.parametrize("target", [41, 45, 55])
    def test_found_motif_matches_stomp_structured(self, structured_series, target):
        result = advance(structured_series, 40, target, p=20)
        reference = stomp(structured_series, target).motif_pair()
        assert result.found_motif, "structured data should stay on the fast path"
        assert result.best_distance == pytest.approx(reference.distance, abs=1e-6)

    def test_planted_motif_followed_across_lengths(self, planted):
        result = advance(planted.series, planted.length - 4, planted.length, p=10)
        reference = stomp(planted.series, planted.length).motif_pair()
        if result.found_motif:
            assert result.best_distance == pytest.approx(
                reference.distance, abs=1e-6
            )
            assert planted.hit(result.best_pair[0])
            assert planted.hit(result.best_pair[1])


class TestValidProfiles:
    def test_valid_rows_equal_full_matrix_profile(self, structured_series):
        t = structured_series
        _, store = compute_matrix_profile(t, 40, 20)
        result = compute_submp(t, store, 41)
        reference = stomp(t, 41)
        known = np.isfinite(result.sub_profile)
        assert known.any()
        np.testing.assert_allclose(
            result.sub_profile[known], reference.profile[known], atol=1e-6
        )

    def test_counters_are_consistent(self, noise_series):
        _, store = compute_matrix_profile(noise_series, 16, 10)
        result = compute_submp(noise_series, store, 17)
        assert result.n_valid + result.n_invalid == result.sub_profile.size
        assert result.submp_size >= result.n_valid

    def test_diagnostics_shapes(self, noise_series):
        _, store = compute_matrix_profile(noise_series, 16, 10)
        result = compute_submp(noise_series, store, 17)
        assert result.min_dist.shape == result.sub_profile.shape
        assert result.max_lb.shape == result.sub_profile.shape


class TestRecomputePaths:
    def test_zero_fraction_disables_partial(self, noise_series):
        _, store = compute_matrix_profile(noise_series, 16, 3)
        result = compute_submp(noise_series, store, 17, recompute_fraction=0.0)
        assert result.n_recomputed == 0

    def test_partial_recompute_is_exact(self, noise_series):
        # Tiny p forces invalid profiles, exercising the partial path.
        result = advance(noise_series, 16, 20, p=2, recompute_fraction=1.0)
        assert result.found_motif
        reference = stomp(noise_series, 20).motif_pair()
        assert result.best_distance == pytest.approx(reference.distance, abs=1e-6)

    def test_not_found_signals_fallback(self, noise_series):
        _, store = compute_matrix_profile(noise_series, 16, 2)
        result = compute_submp(noise_series, store, 17, recompute_fraction=0.0)
        if not result.found_motif:
            assert result.n_recomputed == 0
            assert result.n_invalid > 0


class TestLengthBookkeeping:
    def test_profile_shrinks_with_length(self, noise_series):
        n = noise_series.size
        _, store = compute_matrix_profile(noise_series, 16, 5)
        r17 = compute_submp(noise_series, store, 17)
        assert r17.sub_profile.size == n - 17 + 1
        r18 = compute_submp(noise_series, store, 18)
        assert r18.sub_profile.size == n - 18 + 1

    def test_no_trivial_pairs_reported(self, structured_series):
        from repro.matrixprofile.exclusion import exclusion_zone_half_width

        result = advance(structured_series, 40, 44, p=20)
        if result.best_pair is not None:
            a, b = result.best_pair
            assert abs(a - b) >= exclusion_zone_half_width(44)
