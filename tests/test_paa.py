"""Tests for the PAA summarization layer of QUICK MOTIF."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.paa import (
    paa_lower_bound_factor,
    paa_pairwise_lower_bound,
    paa_transform,
)
from repro.distance.znorm import znormalize, znormalized_distance
from repro.exceptions import InvalidParameterError


def naive_paa(series, start, length, width):
    window = znormalize(series[start : start + length])
    seg = length // width
    return np.array([window[k * seg : (k + 1) * seg].mean() for k in range(width)])


class TestTransform:
    def test_matches_naive(self, rng):
        t = rng.standard_normal(120)
        summaries = paa_transform(t, 24, 6)
        for start in (0, 17, 60, 96):
            np.testing.assert_allclose(
                summaries[start], naive_paa(t, start, 24, 6), atol=1e-9
            )

    def test_shape(self, rng):
        t = rng.standard_normal(100)
        assert paa_transform(t, 20, 5).shape == (81, 5)

    def test_constant_window_is_zero(self):
        t = np.concatenate([np.full(30, 2.0), np.random.default_rng(0).standard_normal(30)])
        summaries = paa_transform(t, 10, 5)
        np.testing.assert_allclose(summaries[0], 0.0, atol=1e-12)

    def test_width_validation(self, rng):
        t = rng.standard_normal(50)
        with pytest.raises(InvalidParameterError):
            paa_transform(t, 10, 0)
        with pytest.raises(InvalidParameterError):
            paa_transform(t, 10, 11)

    def test_width_equal_length(self, rng):
        t = rng.standard_normal(60)
        summaries = paa_transform(t, 8, 8)
        np.testing.assert_allclose(summaries[5], znormalize(t[5:13]), atol=1e-9)


class TestLowerBound:
    @given(st.integers(0, 2**31 - 1), st.integers(8, 40), st.integers(2, 8))
    @settings(max_examples=50, deadline=None)
    def test_admissible_property(self, seed, length, width):
        rng = np.random.default_rng(seed)
        if width > length:
            width = length
        t = rng.standard_normal(length * 4)
        summaries = paa_transform(t, length, width)
        i, j = 0, length * 2
        lb = paa_pairwise_lower_bound(
            summaries[[i]], summaries[[j]], length, width
        )[0, 0]
        true = znormalized_distance(t[i : i + length], t[j : j + length])
        assert lb <= true + 1e-7

    def test_factor(self):
        assert paa_lower_bound_factor(32, 8) == pytest.approx(2.0)

    def test_factor_validation(self):
        with pytest.raises(InvalidParameterError):
            paa_lower_bound_factor(10, 0)

    def test_pairwise_shape(self, rng):
        t = rng.standard_normal(100)
        s = paa_transform(t, 20, 4)
        lb = paa_pairwise_lower_bound(s[:3], s[:5], 20, 4)
        assert lb.shape == (3, 5)
        assert lb[0, 0] == pytest.approx(0.0, abs=1e-9)
