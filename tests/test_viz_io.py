"""Tests for the terminal visualization and I/O helpers."""

import json

import numpy as np
import pytest

from repro.core.valmod import Valmod
from repro.exceptions import (
    InvalidParameterError,
    InvalidSeriesError,
)
from repro.io import (
    load_series,
    motif_sets_to_dict,
    result_to_dict,
    save_result_json,
    save_series,
)
from repro.types import MotifPair, MotifSet
from repro.viz import motif_view, profile_view, sparkline


class TestSparkline:
    def test_length_matches_width(self, rng):
        out = sparkline(rng.standard_normal(500), width=60)
        assert len(out) == 60

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=60)) == 3

    def test_constant_series(self):
        out = sparkline([5.0] * 10)
        assert len(set(out)) == 1

    def test_monotone_series_monotone_bars(self):
        out = sparkline(list(range(8)), width=8)
        assert list(out) == sorted(out)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            sparkline([])
        with pytest.raises(InvalidParameterError):
            sparkline([1.0], width=0)


class TestProfileView:
    def test_contains_stats(self, rng):
        out = profile_view(rng.random(100), label="mp")
        assert "mp:" in out and "min=" in out and "max=" in out

    def test_handles_inf_entries(self):
        profile = np.array([1.0, np.inf, 2.0, 3.0])
        out = profile_view(profile)
        assert "min=1.000" in out

    def test_all_inf_rejected(self):
        with pytest.raises(InvalidParameterError):
            profile_view(np.full(5, np.inf))


class TestMotifView:
    def test_markers_under_occurrences(self, rng):
        out = motif_view(rng.standard_normal(100), [10, 60], 20, width=100)
        line, markers = out.splitlines()
        assert len(line) == len(markers) == 100
        assert markers[15] == "^" and markers[65] == "^"
        assert markers[45] == " "

    def test_occurrence_out_of_range(self, rng):
        with pytest.raises(InvalidParameterError):
            motif_view(rng.standard_normal(50), [45], 20)

    def test_bad_length(self, rng):
        with pytest.raises(InvalidParameterError):
            motif_view(rng.standard_normal(50), [0], 0)


class TestSeriesIO:
    def test_text_round_trip(self, tmp_path, rng):
        t = rng.standard_normal(100)
        path = tmp_path / "series.txt"
        save_series(path, t)
        np.testing.assert_allclose(load_series(path), t, atol=1e-12)

    def test_npy_round_trip(self, tmp_path, rng):
        t = rng.standard_normal(100)
        path = tmp_path / "series.npy"
        save_series(path, t)
        np.testing.assert_array_equal(load_series(path), t)

    def test_multi_column_requires_column(self, tmp_path, rng):
        path = tmp_path / "multi.csv"
        np.savetxt(path, rng.standard_normal((50, 3)), delimiter=",")
        with pytest.raises(InvalidParameterError):
            load_series(path, delimiter=",")
        col = load_series(path, column=1, delimiter=",")
        assert col.size == 50

    def test_column_out_of_range(self, tmp_path, rng):
        path = tmp_path / "multi.csv"
        np.savetxt(path, rng.standard_normal((10, 2)), delimiter=",")
        with pytest.raises(InvalidParameterError):
            load_series(path, column=5, delimiter=",")

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidSeriesError):
            load_series(tmp_path / "nope.txt")


class TestResultSerialization:
    @pytest.fixture(scope="class")
    def run(self):
        rng = np.random.default_rng(0)
        return Valmod(rng.standard_normal(300), 16, 20, p=5).run()

    def test_result_to_dict(self, run):
        out = result_to_dict(run)
        assert out["l_min"] == 16 and out["l_max"] == 20
        assert set(out["motif_pairs"]) == {"16", "17", "18", "19", "20"}
        assert out["best"]["length"] in range(16, 21)
        assert out["stats"]["total_seconds"] > 0

    def test_json_file(self, tmp_path, run):
        path = tmp_path / "result.json"
        save_result_json(path, run)
        loaded = json.loads(path.read_text())
        assert loaded["p"] == 5

    def test_motif_sets_to_dict(self):
        pair = MotifPair.build(3, 60, 20, 1.5)
        sets = [MotifSet(pair=pair, radius=4.5, members=(3, 60, 120))]
        out = motif_sets_to_dict(sets)
        assert out[0]["frequency"] == 3
        assert out[0]["members"] == [3, 60, 120]
        json.dumps(out)  # must be JSON-serializable
