"""Differential wall: the pruned discord driver vs the full-profile oracle.

The MAD-style driver's contract is *bitwise identity*: for any input,
engine, length range, k, and caching mode, ``find_discords_pruned``
returns exactly the ``Discord`` list ``find_discords`` would.  Every
test here asserts ``==`` on the dataclass lists (which compares the
float distances exactly), never ``allclose`` — the pruned driver
evaluates profiles with the same registered engine, so there is no
tolerance to grant.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.discords import find_discords
from repro.core.discords_variable import find_discords_pruned
from repro.exceptions import InvalidParameterError
from repro.kernels.context import SeriesContext
from repro.matrixprofile.registry import engine_names


@pytest.fixture(scope="module")
def anomalous_series():
    """Periodic series with three similar-width injected anomalies."""
    x = np.linspace(0, 24 * np.pi, 700)
    t = np.sin(x) + 0.05 * np.random.default_rng(11).standard_normal(700)
    for pos in (90, 300, 520):
        t[pos : pos + 14] += 4.0 * np.hanning(14)
    return t


class TestDifferentialEngines:
    @pytest.mark.parametrize("engine", sorted(engine_names()))
    def test_every_engine_bitwise_identical(self, anomalous_series, engine):
        t = anomalous_series[:260] if engine == "brute" else anomalous_series
        l_min, l_max = (12, 18) if engine == "brute" else (12, 30)
        full = find_discords(t, l_min, l_max, k=3, engine=engine)
        pruned = find_discords_pruned(t, l_min, l_max, k=3, engine=engine)
        assert full == pruned


class TestDifferentialShapes:
    @pytest.mark.parametrize("l_min,l_max", [(16, 16), (16, 17), (10, 40)])
    def test_length_ranges(self, anomalous_series, l_min, l_max):
        full = find_discords(anomalous_series, l_min, l_max, k=3)
        pruned = find_discords_pruned(anomalous_series, l_min, l_max, k=3)
        assert full == pruned

    @pytest.mark.parametrize("k", [1, 2, 5, 50])
    def test_k_values(self, anomalous_series, k):
        full = find_discords(anomalous_series, 14, 26, k=k)
        pruned = find_discords_pruned(anomalous_series, 14, 26, k=k)
        assert full == pruned

    def test_lengths_subset(self, anomalous_series):
        lengths = [12, 15, 21, 30]
        full = find_discords(anomalous_series, 12, 30, k=3, lengths=lengths)
        pruned = find_discords_pruned(
            anomalous_series, 12, 30, k=3, lengths=lengths
        )
        assert full == pruned

    @pytest.mark.parametrize("p", [2, 5, 50])
    def test_p_never_changes_the_result(self, anomalous_series, p):
        # p sizes the bound store: it moves the pruned/recomputed split,
        # never the output.
        baseline = find_discords(anomalous_series, 12, 28, k=3)
        assert find_discords_pruned(anomalous_series, 12, 28, k=3, p=p) == baseline


class TestDifferentialCaching:
    def test_stats_cache_on_off(self, anomalous_series):
        t = anomalous_series
        ctx = SeriesContext(t)
        without = find_discords_pruned(t, 14, 26, k=3)
        with_cache = find_discords_pruned(t, 14, 26, k=3, context=ctx)
        assert without == with_cache == find_discords(t, 14, 26, k=3)

    def test_repeat_call_deterministic(self, anomalous_series):
        first = find_discords_pruned(anomalous_series, 14, 26, k=3)
        second = find_discords_pruned(anomalous_series, 14, 26, k=3)
        assert first == second


class TestDifferentialEdgeCases:
    def test_constant_series(self):
        t = np.zeros(300)
        assert find_discords_pruned(t, 16, 24, k=2) == find_discords(
            t, 16, 24, k=2
        )

    def test_flat_segment(self):
        t = np.random.default_rng(3).standard_normal(400)
        t[100:180] = 0.25  # dead-air window inside a noisy series
        assert find_discords_pruned(t, 12, 24, k=3) == find_discords(
            t, 12, 24, k=3
        )

    def test_k_exceeding_non_overlapping_discords(self):
        t = np.sin(np.linspace(0, 8 * np.pi, 200))
        full = find_discords(t, 16, 40, k=50)
        pruned = find_discords_pruned(t, 16, 40, k=50)
        assert full == pruned
        assert len(pruned) < 50

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_random_series_differential(self, seed):
        rng = np.random.default_rng(seed)
        t = rng.standard_normal(220)
        full = find_discords(t, 10, 22, k=3)
        pruned = find_discords_pruned(t, 10, 22, k=3)
        assert full == pruned


class TestValidation:
    def test_reversed_range(self, anomalous_series):
        with pytest.raises(InvalidParameterError):
            find_discords_pruned(anomalous_series, 30, 24)

    def test_bad_k(self, anomalous_series):
        with pytest.raises(InvalidParameterError):
            find_discords_pruned(anomalous_series, 14, 26, k=0)

    def test_empty_lengths(self, anomalous_series):
        with pytest.raises(InvalidParameterError):
            find_discords_pruned(anomalous_series, 14, 26, lengths=[])

    def test_lengths_outside_range(self, anomalous_series):
        with pytest.raises(InvalidParameterError):
            find_discords_pruned(anomalous_series, 14, 26, lengths=[40])

    def test_unknown_engine(self, anomalous_series):
        with pytest.raises(InvalidParameterError):
            find_discords_pruned(anomalous_series, 14, 26, engine="nope")
