"""Tests for the STOMP-per-length and exhaustive baselines."""

import time

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_variable_length_motifs
from repro.baselines.stomp_range import stomp_range
from repro.core.valmp import VALMP
from repro.exceptions import BudgetExceededError, InvalidParameterError
from repro.matrixprofile import stomp


class TestStompRange:
    def test_matches_per_length_stomp(self, noise_series):
        result = stomp_range(noise_series, 16, 20)
        for length in range(16, 21):
            reference = stomp(noise_series, length).motif_pair()
            assert result[length].distance == pytest.approx(
                reference.distance, abs=1e-9
            )

    def test_fills_valmp(self, noise_series):
        valmp = VALMP(noise_series.size - 16 + 1)
        stomp_range(noise_series, 16, 20, valmp=valmp)
        assert valmp.updated.any()
        pair = valmp.motif_pair()
        assert 16 <= pair.length <= 20

    def test_deadline(self, noise_series):
        with pytest.raises(BudgetExceededError):
            stomp_range(noise_series, 16, 60, deadline=time.perf_counter() - 1.0)

    def test_reversed_range(self, noise_series):
        with pytest.raises(InvalidParameterError):
            stomp_range(noise_series, 20, 16)


class TestBruteForce:
    def test_matches_stomp_range(self):
        t = np.random.default_rng(21).standard_normal(120)
        mine = brute_force_variable_length_motifs(t, 8, 11)
        reference = stomp_range(t, 8, 11)
        for length in reference:
            assert mine[length].distance == pytest.approx(
                reference[length].distance, abs=1e-6
            )

    def test_finds_planted(self):
        from repro.datasets.motif_planting import plant_motifs

        rng = np.random.default_rng(8)
        pattern = np.sin(np.linspace(0, 4 * np.pi, 24))
        planted = plant_motifs(
            rng.standard_normal(200), pattern, positions=[30, 130], scale=5.0
        )
        result = brute_force_variable_length_motifs(planted.series, 22, 24)
        pair = result[24]
        assert planted.hit(pair.a) and planted.hit(pair.b)
