"""Tests for AB-joins and MPdist."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distance.znorm import znormalized_distance
from repro.exceptions import InvalidParameterError
from repro.matrixprofile.join import ab_join_motif, stomp_ab_join
from repro.matrixprofile.mpdist import mpdist


@pytest.fixture(scope="module")
def two_series(rng):
    gen = np.random.default_rng(77)
    return gen.standard_normal(300), gen.standard_normal(260)


class TestAbJoin:
    def test_matches_naive(self, two_series):
        a, b = two_series
        join = stomp_ab_join(a, b, 20)
        n_b = b.size - 20 + 1
        for i in (0, 50, 200):
            truth = min(
                znormalized_distance(a[i : i + 20], b[j : j + 20])
                for j in range(n_b)
            )
            assert join.profile[i] == pytest.approx(truth, abs=1e-6)

    def test_index_points_into_b(self, two_series):
        a, b = two_series
        join = stomp_ab_join(a, b, 20)
        n_b = b.size - 20 + 1
        assert join.index.min() >= 0
        assert join.index.max() < n_b

    def test_no_exclusion_zone(self):
        """Identical series: every window's cross-NN is itself at 0."""
        t = np.random.default_rng(1).standard_normal(200)
        join = stomp_ab_join(t, t, 16)
        np.testing.assert_allclose(join.profile, 0.0, atol=1e-5)
        np.testing.assert_array_equal(join.index, np.arange(join.profile.size))

    def test_asymmetric_shapes(self, two_series):
        a, b = two_series
        assert stomp_ab_join(a, b, 20).profile.size == a.size - 19
        assert stomp_ab_join(b, a, 20).profile.size == b.size - 19

    def test_planted_cross_match(self, two_series):
        a, b = two_series
        a = a.copy()
        b = b.copy()
        pattern = np.sin(np.linspace(0, 4 * np.pi, 30))
        a[60:90] += 6 * pattern
        b[150:180] += 6 * pattern
        pair, _ = ab_join_motif(a, b, 30)
        assert abs(pair.a - 60) <= 5
        assert abs(pair.b - 150) <= 5

    def test_length_validation(self, two_series):
        a, b = two_series
        with pytest.raises(InvalidParameterError):
            stomp_ab_join(a, b, 1)
        with pytest.raises(InvalidParameterError):
            stomp_ab_join(a, b, 500)

    @given(st.integers(0, 2**31 - 1), st.integers(4, 16))
    @settings(max_examples=15, deadline=None)
    def test_matches_naive_property(self, seed, length):
        gen = np.random.default_rng(seed)
        a = gen.standard_normal(length * 4)
        b = gen.standard_normal(length * 3)
        join = stomp_ab_join(a, b, length)
        i = int(gen.integers(0, a.size - length + 1))
        truth = min(
            znormalized_distance(a[i : i + length], b[j : j + length])
            for j in range(b.size - length + 1)
        )
        assert join.profile[i] == pytest.approx(truth, abs=1e-5)


class TestMpdist:
    def test_self_distance_zero(self, two_series):
        a, _ = two_series
        assert mpdist(a, a, 20) == pytest.approx(0.0, abs=1e-6)

    def test_symmetry(self, two_series):
        a, b = two_series
        assert mpdist(a, b, 20) == pytest.approx(mpdist(b, a, 20), abs=1e-9)

    def test_non_negative(self, two_series):
        a, b = two_series
        assert mpdist(a, b, 20) >= 0.0

    def test_shared_structure_reduces_distance(self):
        gen = np.random.default_rng(3)
        pattern = np.sin(np.linspace(0, 6 * np.pi, 150))
        a = gen.standard_normal(300) * 0.2
        b = gen.standard_normal(300) * 0.2
        c = gen.standard_normal(300) * 0.2
        a[50:200] += pattern
        b[100:250] += pattern  # shares the pattern, misaligned
        d_related = mpdist(a, b, 30)
        d_unrelated = mpdist(a, c, 30)
        assert d_related < d_unrelated

    def test_threshold_monotone(self, two_series):
        a, b = two_series
        small = mpdist(a, b, 20, threshold=0.02)
        large = mpdist(a, b, 20, threshold=0.5)
        assert small <= large + 1e-9

    def test_threshold_validation(self, two_series):
        a, b = two_series
        with pytest.raises(InvalidParameterError):
            mpdist(a, b, 20, threshold=0.0)
        with pytest.raises(InvalidParameterError):
            mpdist(a, b, 20, threshold=1.5)
