"""Cross-cutting property-based tests (hypothesis).

The heavyweight randomized checks that tie the whole system together:
metric properties of the distance, end-to-end VALMOD-vs-ground-truth on
random inputs, and degenerate-input behaviour.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.stomp_range import stomp_range
from repro.core.valmod import Valmod
from repro.datasets.motif_planting import plant_motifs
from repro.distance.znorm import znormalized_distance
from repro.matrixprofile import stomp


class TestMetricProperties:
    @given(st.integers(0, 2**31 - 1), st.integers(4, 32))
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, seed, length):
        """z-normalized ED is the Euclidean distance between normalized
        vectors, hence a pseudo-metric: the triangle inequality holds."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(length)
        y = rng.standard_normal(length)
        z = rng.standard_normal(length)
        d_xy = znormalized_distance(x, y)
        d_yz = znormalized_distance(y, z)
        d_xz = znormalized_distance(x, z)
        assert d_xz <= d_xy + d_yz + 1e-7

    @given(st.integers(0, 2**31 - 1), st.integers(4, 32))
    @settings(max_examples=30, deadline=None)
    def test_identity_of_affine_indiscernibles(self, seed, length):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(length)
        scale = float(rng.uniform(0.5, 3.0))
        shift = float(rng.uniform(-5, 5))
        assert znormalized_distance(x, scale * x + shift) < 1e-6


class TestValmodRandomized:
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(8, 20),
        st.integers(1, 6),
    )
    @settings(max_examples=15, deadline=None)
    def test_valmod_equals_ground_truth_on_random_series(
        self, seed, l_min, range_width
    ):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(120, 250))
        series = rng.standard_normal(n)
        l_max = min(l_min + range_width, n // 2)
        if l_max < l_min:
            return
        p = int(rng.integers(1, 12))
        run = Valmod(series, l_min, l_max, p=p).run()
        reference = stomp_range(series, l_min, l_max)
        for length in reference:
            assert run.motif_pairs[length].distance == pytest.approx(
                reference[length].distance, abs=1e-6
            ), f"seed={seed} length={length} p={p}"

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_valmod_finds_planted_motifs_in_noise(self, seed):
        rng = np.random.default_rng(seed)
        length = int(rng.integers(24, 40))
        pattern = np.sin(np.linspace(0, 4 * np.pi, length))
        planted = plant_motifs(
            rng.standard_normal(400), pattern, count=2, scale=6.0, rng=rng
        )
        run = Valmod(planted.series, length - 2, length + 2, p=8).run()
        best = run.best_motif_pair()
        assert planted.hit(best.a, tolerance=length)
        assert planted.hit(best.b, tolerance=length)


class TestDegenerateInputs:
    def test_all_constant_series(self):
        """Every window constant: all distances are 0 by convention; the
        engines must agree and not crash."""
        t = np.full(60, 3.0)
        mp = stomp(t, 8)
        pair = mp.motif_pair()
        assert pair.distance == 0.0

    def test_linear_ramp(self):
        """A pure ramp: every window z-normalizes to the same shape, so
        all non-trivial distances are ~0."""
        t = np.linspace(0.0, 10.0, 80)
        mp = stomp(t, 8)
        assert mp.motif_pair().distance == pytest.approx(0.0, abs=1e-5)

    def test_step_function(self):
        t = np.concatenate([np.zeros(40), np.ones(40)])
        run = Valmod(t, 8, 10, p=4).run()
        reference = stomp_range(t, 8, 10)
        for length in reference:
            assert run.motif_pairs[length].distance == pytest.approx(
                reference[length].distance, abs=1e-6
            )

    def test_single_spike_in_flatline(self):
        t = np.zeros(100)
        t[50] = 100.0
        run = Valmod(t, 6, 8, p=4).run()
        reference = stomp_range(t, 6, 8)
        for length in reference:
            assert run.motif_pairs[length].distance == pytest.approx(
                reference[length].distance, abs=1e-6
            )

    def test_alternating_series(self):
        t = np.tile([1.0, -1.0], 50)
        run = Valmod(t, 8, 12, p=4).run()
        for pair in run.motif_pairs.values():
            assert pair.distance == pytest.approx(0.0, abs=1e-6)

    def test_tiny_series_at_validation_boundary(self):
        t = np.random.default_rng(0).standard_normal(16)
        run = Valmod(t, 4, 8, p=2).run()
        assert set(run.motif_pairs) == set(range(4, 9))

    def test_huge_amplitude_series(self):
        t = np.random.default_rng(1).standard_normal(150) * 1e6 + 1e8
        run = Valmod(t, 12, 14, p=4).run()
        reference = stomp_range(t, 12, 14)
        for length in reference:
            assert run.motif_pairs[length].distance == pytest.approx(
                reference[length].distance, abs=1e-4
            )
