"""Tests for Algorithm 3 (ComputeMatrixProfile with listDP)."""

import numpy as np
import pytest

from repro.core.compute_mp import compute_matrix_profile
from repro.matrixprofile import stomp
from tests.conftest import assert_profiles_close


def test_profile_matches_stomp(noise_series):
    mp, _ = compute_matrix_profile(noise_series, 16, 5)
    reference = stomp(noise_series, 16)
    assert_profiles_close(mp.profile, reference.profile, atol=1e-8)


def test_profile_matches_stomp_structured(structured_series):
    mp, _ = compute_matrix_profile(structured_series, 40, 10)
    reference = stomp(structured_series, 40)
    assert_profiles_close(mp.profile, reference.profile, atol=1e-8)


def test_store_dimensions(noise_series):
    mp, store = compute_matrix_profile(noise_series, 16, 7)
    assert store.n_profiles == len(mp)
    assert store.p == 7
    assert store.current_length == 16
    assert (store.base_length == 16).all()


def test_every_profile_has_entries(noise_series):
    _, store = compute_matrix_profile(noise_series, 16, 5)
    filled = (store.neighbor >= 0).sum(axis=1)
    assert (filled == 5).all(), "with n >> p every row should be full"


def test_motif_pair_in_some_store_row(planted):
    """The nearest neighbor of the motif member should be among its
    stored entries: it has correlation near 1, hence the smallest LB."""
    mp, store = compute_matrix_profile(planted.series, planted.length, 5)
    pair = mp.motif_pair()
    assert pair.b in set(store.neighbor[pair.a].tolist())


def test_large_p_keeps_all_candidates():
    t = np.random.default_rng(1).standard_normal(60)
    mp, store = compute_matrix_profile(t, 10, 1000)
    n_subs = len(mp)
    zone = mp.exclusion
    for row in range(0, n_subs, 13):
        eligible = int((np.abs(np.arange(n_subs) - row) >= zone).sum())
        stored = int((store.neighbor[row] >= 0).sum())
        assert stored == eligible
