"""Randomized end-to-end invariant checks (hypothesis).

The DESIGN.md invariants that earlier files check on fixed fixtures,
re-checked here on randomized inputs: motif-set structure (invariant 7),
subMP validity semantics, pan-profile exactness, and SAX grouping.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.sax import sax_transform, sax_words
from repro.core.compute_mp import compute_matrix_profile
from repro.core.compute_submp import compute_submp
from repro.core.motif_sets import find_motif_sets
from repro.core.pan import compute_pan_matrix_profile
from repro.distance.znorm import znormalized_distance
from repro.matrixprofile import stomp
from repro.matrixprofile.exclusion import exclusion_zone_half_width


class TestMotifSetInvariants:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_structure_on_random_series(self, seed):
        rng = np.random.default_rng(seed)
        t = rng.standard_normal(260)
        pattern = np.sin(np.linspace(0, 4 * np.pi, 24))
        t[40:64] += 4 * pattern
        t[160:184] += 4 * pattern
        sets = find_motif_sets(t, 22, 26, k=3, radius_factor=3.0, p=8)
        claimed = set()
        for ms in sets:
            zone = exclusion_zone_half_width(ms.length)
            members = sorted(ms.members)
            assert ms.frequency >= 2
            for a, b in zip(members, members[1:]):
                assert b - a >= zone
            for member in members:
                key = (member, ms.length)
                assert key not in claimed
                claimed.add(key)
                d_a = znormalized_distance(
                    t[member : member + ms.length],
                    t[ms.pair.a : ms.pair.a + ms.length],
                )
                d_b = znormalized_distance(
                    t[member : member + ms.length],
                    t[ms.pair.b : ms.pair.b + ms.length],
                )
                assert min(d_a, d_b) < ms.radius + 1e-9


class TestSubMPValiditySemantics:
    @given(st.integers(0, 2**31 - 1), st.integers(1, 8))
    @settings(max_examples=10, deadline=None)
    def test_valid_entries_are_true_profile_values(self, seed, p):
        rng = np.random.default_rng(seed)
        t = rng.standard_normal(180)
        _, store = compute_matrix_profile(t, 14, p)
        result = compute_submp(t, store, 15)
        reference = stomp(t, 15)
        known = np.isfinite(result.sub_profile)
        np.testing.assert_allclose(
            result.sub_profile[known], reference.profile[known], atol=1e-6
        )
        if result.found_motif and result.best_pair is not None:
            assert result.best_distance == pytest.approx(
                reference.motif_pair().distance, abs=1e-6
            )


class TestPanExactness:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_assisted_equals_exhaustive(self, seed):
        rng = np.random.default_rng(seed)
        t = rng.standard_normal(160)
        assisted = compute_pan_matrix_profile(t, 12, 15, strategy="valmod", p=4)
        exhaustive = compute_pan_matrix_profile(t, 12, 15, strategy="exact")
        finite = np.isfinite(exhaustive.distances)
        np.testing.assert_array_equal(
            np.isfinite(assisted.distances), finite
        )
        np.testing.assert_allclose(
            assisted.distances[finite], exhaustive.distances[finite], atol=1e-6
        )


class TestSaxGrouping:
    @given(st.integers(0, 2**31 - 1), st.integers(2, 6), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_packed_words_respect_symbols(self, seed, alphabet, word_len):
        rng = np.random.default_rng(seed)
        t = rng.standard_normal(120)
        length = 24
        symbols = sax_transform(t, length, word_len, alphabet)
        words = sax_words(t, length, word_len, alphabet)
        # Equal packed word <=> equal symbol row.
        for i in range(0, len(words), 17):
            same = np.where(words == words[i])[0]
            for j in same:
                np.testing.assert_array_equal(symbols[i], symbols[j])

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_identical_subsequences_share_words(self, seed):
        rng = np.random.default_rng(seed)
        block = rng.standard_normal(30)
        t = np.concatenate([block, rng.standard_normal(25), block])
        words = sax_words(t, 30, 6, 4)
        assert words[0] == words[55]
