"""Tests for the streaming (incremental) matrix profile."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.matrixprofile import StreamingMatrixProfile, stomp
from tests.conftest import assert_profiles_close


@pytest.fixture()
def feed(rng):
    return np.random.default_rng(42).standard_normal(350)


class TestEquivalenceWithBatch:
    def test_single_append(self, feed):
        smp = StreamingMatrixProfile(feed[:-1], length=20)
        smp.append(float(feed[-1]))
        batch = stomp(feed, 20)
        assert_profiles_close(smp.matrix_profile().profile, batch.profile, atol=1e-6)

    def test_many_appends(self, feed):
        smp = StreamingMatrixProfile(feed[:250], length=20)
        smp.extend(feed[250:])
        batch = stomp(feed, 20)
        assert_profiles_close(smp.matrix_profile().profile, batch.profile, atol=1e-6)

    def test_indices_point_to_true_neighbors(self, feed):
        smp = StreamingMatrixProfile(feed[:300], length=16)
        smp.extend(feed[300:])
        mp = smp.matrix_profile()
        batch = stomp(feed, 16)
        # Distances agree; indices may differ only on exact ties.
        disagreements = mp.index != batch.index
        if disagreements.any():
            np.testing.assert_allclose(
                mp.profile[disagreements], batch.profile[disagreements], atol=1e-6
            )

    def test_motif_pair_tracks_stream(self, feed):
        pattern = np.sin(np.linspace(0, 4 * np.pi, 30))
        series = feed.copy()
        series[50:80] += 5 * pattern
        smp = StreamingMatrixProfile(series, length=30)
        # Stream in a second copy of the pattern.
        tail = np.random.default_rng(1).standard_normal(60)
        tail[10:40] += 5 * pattern
        smp.extend(tail)
        pair = smp.matrix_profile().motif_pair()
        assert {True} == {
            abs(offset - 50) <= 30 or offset >= len(series) - 30
            for offset in (pair.a, pair.b)
        }


class TestValidation:
    def test_initial_length_checks(self, feed):
        with pytest.raises(InvalidParameterError):
            StreamingMatrixProfile(feed, length=1)
        with pytest.raises(InvalidParameterError):
            StreamingMatrixProfile(feed[:20], length=15)

    def test_non_finite_append_rejected(self, feed):
        smp = StreamingMatrixProfile(feed[:100], length=10)
        with pytest.raises(InvalidParameterError):
            smp.append(float("nan"))

    def test_bookkeeping(self, feed):
        smp = StreamingMatrixProfile(feed[:100], length=10)
        assert len(smp) == 100
        assert smp.n_subsequences == 91
        smp.append(1.0)
        assert len(smp) == 101
        assert smp.n_subsequences == 92
        assert smp.series().size == 101
