"""Tests for the streaming (incremental) matrix profile."""

import numpy as np
import pytest

from repro import obs
from repro.exceptions import InvalidParameterError, WindowTooSmallError
from repro.matrixprofile import StreamingMatrixProfile, stomp
from tests.conftest import assert_profiles_close


@pytest.fixture()
def feed(rng):
    return np.random.default_rng(42).standard_normal(350)


class TestEquivalenceWithBatch:
    def test_single_append(self, feed):
        smp = StreamingMatrixProfile(feed[:-1], length=20)
        smp.append(float(feed[-1]))
        batch = stomp(feed, 20)
        assert_profiles_close(smp.matrix_profile().profile, batch.profile, atol=1e-6)

    def test_many_appends(self, feed):
        smp = StreamingMatrixProfile(feed[:250], length=20)
        smp.extend(feed[250:])
        batch = stomp(feed, 20)
        assert_profiles_close(smp.matrix_profile().profile, batch.profile, atol=1e-6)

    def test_indices_point_to_true_neighbors(self, feed):
        smp = StreamingMatrixProfile(feed[:300], length=16)
        smp.extend(feed[300:])
        mp = smp.matrix_profile()
        batch = stomp(feed, 16)
        # Distances agree; indices may differ only on exact ties.
        disagreements = mp.index != batch.index
        if disagreements.any():
            np.testing.assert_allclose(
                mp.profile[disagreements], batch.profile[disagreements], atol=1e-6
            )

    def test_motif_pair_tracks_stream(self, feed):
        pattern = np.sin(np.linspace(0, 4 * np.pi, 30))
        series = feed.copy()
        series[50:80] += 5 * pattern
        smp = StreamingMatrixProfile(series, length=30)
        # Stream in a second copy of the pattern.
        tail = np.random.default_rng(1).standard_normal(60)
        tail[10:40] += 5 * pattern
        smp.extend(tail)
        pair = smp.matrix_profile().motif_pair()
        assert {True} == {
            abs(offset - 50) <= 30 or offset >= len(series) - 30
            for offset in (pair.a, pair.b)
        }


class TestValidation:
    def test_initial_length_checks(self, feed):
        with pytest.raises(InvalidParameterError):
            StreamingMatrixProfile(feed, length=1)
        with pytest.raises(InvalidParameterError):
            StreamingMatrixProfile(feed[:20], length=15)

    def test_non_finite_append_rejected(self, feed):
        smp = StreamingMatrixProfile(feed[:100], length=10)
        with pytest.raises(InvalidParameterError):
            smp.append(float("nan"))

    def test_bookkeeping(self, feed):
        smp = StreamingMatrixProfile(feed[:100], length=10)
        assert len(smp) == 100
        assert smp.n_subsequences == 91
        smp.append(1.0)
        assert len(smp) == 101
        assert smp.n_subsequences == 92
        assert smp.series().size == 101


class TestSlidingWindow:
    def test_eviction_matches_batch_on_retained_window(self, feed):
        smp = StreamingMatrixProfile(feed[:250], length=20, max_points=280)
        smp.extend(feed[250:])
        assert smp.window_start == 70
        assert len(smp) == 280
        mp = smp.matrix_profile()
        batch = stomp(feed[70:].copy(), 20)
        assert_profiles_close(mp.profile, batch.profile, atol=1e-8)
        disagreements = mp.index != batch.index
        if disagreements.any():  # only exact distance ties may differ
            np.testing.assert_allclose(
                mp.profile[disagreements],
                batch.profile[disagreements],
                atol=1e-8,
            )

    def test_initial_series_larger_than_window(self, feed):
        smp = StreamingMatrixProfile(feed[:300], length=16, max_points=120)
        assert len(smp) == 120 and smp.window_start == 180
        batch = stomp(feed[180:300].copy(), 16)
        assert_profiles_close(
            smp.matrix_profile().profile, batch.profile, atol=1e-8
        )

    def test_window_too_small_rejected(self, feed):
        with pytest.raises(WindowTooSmallError):
            StreamingMatrixProfile(feed[:200], length=30, max_points=59)


class TestAllocationRegression:
    def test_appends_do_not_rebuild_per_append_state(self, feed):
        """The hoisted-buffer contract, pinned via the obs counters.

        Before the rewrite every append rebuilt the series array and a
        fresh SeriesContext, so ``stats.cache.misses`` grew linearly
        with the number of appends.  Now the per-window statistics are
        extended in place (zero misses during appends) and buffer
        growth is amortized doubling (at most log2 regrows).
        """
        appends = 100
        with obs.tracing(True):
            obs.reset()
            smp = StreamingMatrixProfile(feed[:250], length=20)
            after_init = dict(obs.snapshot()["counters"])
            smp.extend(feed[250 : 250 + appends])
            counters = dict(obs.snapshot()["counters"])
        assert counters["streaming.appends"] == appends
        misses_during_appends = counters.get(
            "stats.cache.misses", 0
        ) - after_init.get("stats.cache.misses", 0)
        assert misses_during_appends == 0
        regrows = counters.get("streaming.buffer.regrows", 0)
        assert regrows <= int(np.ceil(np.log2(250 + appends)))

    def test_eviction_repairs_orphaned_rows(self, feed):
        with obs.tracing(True):
            obs.reset()
            smp = StreamingMatrixProfile(feed[:250], length=20, max_points=260)
            smp.extend(feed[250:])
            counters = dict(obs.snapshot()["counters"])
        assert counters["streaming.entries.evicted"] == feed.size - 260
        assert counters["streaming.rows.repaired"] > 0
        # ... and the repaired state is still exact (the wall above
        # re-checks this; here we only pin that repairs happened).
