"""Tests for the benchmark harness (grids, timed runs, sweeps, reporting)."""

import numpy as np
import pytest

from repro.harness.config import BenchmarkGrid, default_grid, env_scale
from repro.harness.experiments import (
    SweepResult,
    sweep_motif_length,
    sweep_motif_sets,
    sweep_parameter_p,
)
from repro.harness.reporting import format_histogram, format_series, format_table
from repro.harness.runner import ALGORITHMS, run_algorithm
from repro.exceptions import InvalidParameterError


TINY = BenchmarkGrid(
    motif_lengths=[8, 12],
    motif_ranges=[2, 4],
    series_sizes=[256, 384],
    p_values=[5, 10],
    default_length=8,
    default_range=3,
    default_size=256,
    default_p=5,
    timeout_seconds=60.0,
    k_values=[2, 4],
    d_values=[2, 3],
    default_k=4,
    default_d=2,
)


class TestGrid:
    def test_default_grid_ratios(self):
        grid = default_grid(scale=1.0)
        # the range/length ratio tracks the paper's grid (sizes shrink
        # further than lengths by design — see DESIGN.md)
        assert grid.default_range / grid.default_length == pytest.approx(
            200 / 1024, rel=0.25
        )
        assert grid.default_length in grid.motif_lengths
        assert grid.default_size in grid.series_sizes

    def test_scaling(self):
        base = default_grid(scale=1.0)
        double = default_grid(scale=2.0)
        assert double.default_size == 2 * base.default_size
        assert double.motif_lengths[0] == 2 * base.motif_lengths[0]

    def test_p_values_match_paper(self):
        assert default_grid(scale=1.0).p_values == [5, 10, 15, 20, 50, 100, 150]

    def test_env_scale_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "abc")
        with pytest.raises(InvalidParameterError):
            env_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(InvalidParameterError):
            env_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert env_scale() == 2.5


class TestRunner:
    @pytest.mark.parametrize("name", list(ALGORITHMS))
    def test_all_algorithms_run(self, noise_series, name):
        outcome = run_algorithm(name, noise_series, 16, 18, p=5)
        assert not outcome.dnf
        assert outcome.seconds > 0
        assert set(outcome.motif_pairs) == {16, 17, 18}

    def test_algorithms_agree(self, noise_series):
        results = {
            name: run_algorithm(name, noise_series, 16, 18, p=5).motif_pairs
            for name in ALGORITHMS
        }
        reference = results["STOMP"]
        for name, pairs in results.items():
            for length in reference:
                assert pairs[length].distance == pytest.approx(
                    reference[length].distance, abs=1e-6
                ), f"{name} disagrees at length {length}"

    def test_dnf_on_impossible_budget(self, structured_series):
        outcome = run_algorithm(
            "STOMP", structured_series, 30, 60, timeout_seconds=0.0
        )
        assert outcome.dnf
        assert outcome.motif_pairs is None
        assert outcome.cell() == "DNF"

    def test_unknown_algorithm(self, noise_series):
        with pytest.raises(InvalidParameterError):
            run_algorithm("NOPE", noise_series, 16, 18)


class TestSweeps:
    def test_motif_length_sweep_structure(self):
        result = sweep_motif_length(
            datasets=["ECG"], algorithms=["VALMOD", "STOMP"], grid=TINY
        )
        assert isinstance(result, SweepResult)
        assert len(result.rows) == len(TINY.motif_lengths)
        headers = result.headers()
        assert headers[:2] == ["dataset", "l_min"]
        table = result.table_rows()
        assert all(len(row) == len(headers) for row in table)

    def test_speedup_computation(self):
        result = sweep_motif_length(
            datasets=["ECG"], algorithms=["VALMOD", "STOMP"], grid=TINY
        )
        speedups = result.speedup_vs("STOMP")
        assert len(speedups) == len(result.rows)
        assert all(s > 0 for s in speedups)

    def test_parameter_p_sweep(self):
        rows = sweep_parameter_p(datasets=["ECG"], grid=TINY)
        assert len(rows) == len(TINY.p_values)
        for row in rows:
            assert row["seconds"] > 0
            assert len(row["submp_sizes"]) == TINY.default_range

    def test_motif_sets_sweep(self):
        rows = sweep_motif_sets(datasets=["ECG"], grid=TINY)
        assert len(rows) == len(TINY.k_values) + len(TINY.d_values)
        for row in rows:
            assert row["seconds"] >= 0
            assert row["valmp_seconds"] > row["seconds"], (
                "set extraction must be much cheaper than the VALMP build"
            )


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_histogram(self):
        counts, edges = np.histogram([1.0, 2.0, 2.5], bins=3)
        out = format_histogram(counts, edges)
        assert out.count("\n") == 2
        assert "#" in out

    def test_format_series(self):
        out = format_series("label", [1.0, 2.0])
        assert "label" in out and "1.000" in out
