"""Integration tests for the VALMOD driver (Algorithm 1) — invariant 4:
VALMOD's per-length motif pairs equal the ground truth, always."""

import numpy as np
import pytest

from repro.baselines.stomp_range import stomp_range
from repro.core.valmod import Valmod, valmod
from repro.core.valmp import VALMP
from repro.exceptions import InvalidParameterError, InvalidSeriesError


def assert_same_motifs(mine, reference, atol=1e-6):
    assert set(mine) == set(reference)
    for length in reference:
        assert mine[length].distance == pytest.approx(
            reference[length].distance, abs=atol
        ), f"motif distance mismatch at length {length}"


class TestExactness:
    def test_noise(self, noise_series):
        run = Valmod(noise_series, 16, 28, p=8).run()
        assert_same_motifs(run.motif_pairs, stomp_range(noise_series, 16, 28))

    def test_structured(self, structured_series):
        run = Valmod(structured_series, 40, 60, p=20).run()
        assert_same_motifs(
            run.motif_pairs, stomp_range(structured_series, 40, 60)
        )

    def test_planted(self, planted):
        run = Valmod(planted.series, 32, 48, p=10).run()
        assert_same_motifs(run.motif_pairs, stomp_range(planted.series, 32, 48))
        best = run.best_motif_pair()
        assert planted.hit(best.a, tolerance=40)
        assert planted.hit(best.b, tolerance=40)

    def test_tiny_p(self, noise_series):
        """p=1 stresses every fallback path; results must stay exact."""
        run = Valmod(noise_series, 16, 22, p=1).run()
        assert_same_motifs(run.motif_pairs, stomp_range(noise_series, 16, 22))

    def test_huge_p(self, noise_series):
        """p >= candidate count: every profile fully stored, no fallbacks."""
        run = Valmod(noise_series, 16, 20, p=10_000).run()
        assert_same_motifs(run.motif_pairs, stomp_range(noise_series, 16, 20))
        assert run.stats.n_full_recomputes == 0

    def test_single_length_range(self, noise_series):
        run = Valmod(noise_series, 16, 16).run()
        assert list(run.motif_pairs) == [16]

    def test_constant_segments(self):
        t = np.random.default_rng(5).standard_normal(300)
        t[100:140] = 1.0
        run = Valmod(t, 12, 18, p=10).run()
        assert_same_motifs(run.motif_pairs, stomp_range(t, 12, 18))


class TestAblations:
    def test_no_lb_pruning_equals_pruned(self, structured_series):
        pruned = Valmod(structured_series, 40, 50, p=20).run()
        unpruned = Valmod(structured_series, 40, 50, lb_pruning=False).run()
        assert_same_motifs(pruned.motif_pairs, unpruned.motif_pairs)
        assert unpruned.stats.n_full_recomputes == 10  # every non-initial length

    def test_no_partial_recompute_still_exact(self, noise_series):
        run = Valmod(noise_series, 16, 24, p=4, recompute_fraction=0.0).run()
        assert_same_motifs(run.motif_pairs, stomp_range(noise_series, 16, 24))
        assert run.stats.n_partial_recomputes == 0


class TestValmpSemantics:
    def test_valmp_upper_bounds_exact_valmp(self, structured_series):
        """VALMOD's VALMP entries are >= the exhaustive VALMP entries
        (non-valid profiles may retain a coarser length's value), and the
        global minimum is exact."""
        run = Valmod(structured_series, 40, 52, p=20).run()
        exact = VALMP(structured_series.size - 40 + 1)
        stomp_range(structured_series, 40, 52, valmp=exact)
        mine = run.valmp
        mask = exact.updated & mine.updated
        assert mask.any()
        assert np.all(
            mine.norm_distances[mask] >= exact.norm_distances[mask] - 1e-9
        )
        assert mine.motif_pair().normalized_distance == pytest.approx(
            exact.motif_pair().normalized_distance, abs=1e-9
        )

    def test_valmp_lengths_in_range(self, noise_series):
        run = Valmod(noise_series, 16, 24, p=8).run()
        lengths = run.valmp.lengths[run.valmp.updated]
        assert lengths.min() >= 16
        assert lengths.max() <= 24


class TestStats:
    def test_every_length_recorded(self, noise_series):
        run = Valmod(noise_series, 16, 24, p=8).run()
        assert [s.length for s in run.stats.per_length] == list(range(16, 25))
        assert run.stats.per_length[0].mode == "initial"

    def test_modes_partition(self, noise_series):
        run = Valmod(noise_series, 16, 24, p=8).run()
        stats = run.stats
        assert (
            stats.n_fast_lengths
            + stats.n_partial_recomputes
            + stats.n_full_recomputes
            == len(stats.per_length) - 1
        )

    def test_margins_kept_on_request(self, noise_series):
        run = Valmod(noise_series, 16, 18, p=8, keep_margins=True).run()
        submp_stats = [s for s in run.stats.per_length if s.mode.startswith("submp")]
        for s in submp_stats:
            assert s.pruning_margin is not None

    def test_summary_mentions_counts(self, noise_series):
        run = Valmod(noise_series, 16, 18, p=8).run()
        assert "lengths" in run.stats.summary()


class TestValidation:
    def test_reversed_range(self, noise_series):
        with pytest.raises(InvalidParameterError):
            Valmod(noise_series, 24, 16)

    def test_length_too_large(self, noise_series):
        with pytest.raises(InvalidParameterError):
            Valmod(noise_series, 16, noise_series.size)

    def test_bad_p(self, noise_series):
        with pytest.raises(InvalidParameterError):
            Valmod(noise_series, 16, 20, p=0)

    def test_bad_series(self):
        with pytest.raises(InvalidSeriesError):
            Valmod([1.0, np.nan, 2.0] * 20, 4, 6)

    def test_functional_wrapper(self, noise_series):
        result = valmod(noise_series, 16, 18, p=8)
        assert set(result.motif_pairs) == {16, 17, 18}


class TestRankedOutput:
    def test_ranked_pairs_sorted(self, structured_series):
        run = Valmod(structured_series, 40, 50, p=20).run()
        ranked = run.ranked_motif_pairs()
        norms = [p.normalized_distance for p in ranked]
        assert norms == sorted(norms)
        assert run.best_motif_pair() == ranked[0]
