"""Tests for the matrix-profile family primitives:
left/right profiles, chains, FLUSS segmentation, annotation vectors."""

import numpy as np
import pytest

from repro.core.annotation import (
    apply_annotation,
    interval_annotation,
    variance_annotation,
)
from repro.core.chains import all_chains, unanchored_chain
from repro.core.segmentation import (
    arc_curve,
    corrected_arc_curve,
    fluss,
    regime_boundaries,
)
from repro.exceptions import InvalidParameterError
from repro.matrixprofile import stomp
from repro.matrixprofile.leftright import stomp_left_right


class TestLeftRightProfiles:
    def test_full_matches_stomp(self, noise_series):
        lr = stomp_left_right(noise_series, 16)
        reference = stomp(noise_series, 16)
        fin = np.isfinite(reference.profile)
        np.testing.assert_allclose(
            lr.profile[fin], reference.profile[fin], atol=1e-9
        )

    def test_directionality(self, noise_series):
        lr = stomp_left_right(noise_series, 16)
        n = lr.profile.size
        for i in range(0, n, 37):
            if lr.left_index[i] >= 0:
                assert lr.left_index[i] < i
            if lr.right_index[i] >= 0:
                assert lr.right_index[i] > i

    def test_full_is_min_of_left_right(self, noise_series):
        lr = stomp_left_right(noise_series, 16)
        combined = np.minimum(lr.left_profile, lr.right_profile)
        fin = np.isfinite(lr.profile)
        np.testing.assert_allclose(lr.profile[fin], combined[fin], atol=1e-9)

    def test_first_window_has_no_left_neighbor(self, noise_series):
        lr = stomp_left_right(noise_series, 16)
        assert lr.left_index[0] == -1
        assert lr.right_index[lr.profile.size - 1] == -1

    def test_accessors_return_matrix_profiles(self, noise_series):
        lr = stomp_left_right(noise_series, 16)
        assert lr.full().length == 16
        assert lr.left().length == 16
        assert lr.right().length == 16


class TestChains:
    @pytest.fixture(scope="class")
    def drifting_series(self):
        """A pattern that drifts in shape at each occurrence: the
        canonical chain-producing input."""
        rng = np.random.default_rng(6)
        t = 0.1 * rng.standard_normal(1400)
        base = np.linspace(0, 2 * np.pi, 60)
        for k, pos in enumerate(range(50, 1300, 200)):
            # gradually morphing pattern: sin -> increasingly skewed
            warp = 1.0 + 0.18 * k
            t[pos : pos + 60] += 3 * np.sin(base * warp) * np.hanning(60)
        return t

    def test_members_strictly_increasing(self, drifting_series):
        for chain in all_chains(drifting_series, 60):
            members = list(chain.members)
            assert members == sorted(members)
            assert len(set(members)) == len(members)

    def test_positions_in_at_most_one_chain(self, drifting_series):
        seen = set()
        for chain in all_chains(drifting_series, 60):
            for member in chain.members:
                assert member not in seen
                seen.add(member)

    def test_unanchored_chain_follows_the_drift(self, drifting_series):
        chain = unanchored_chain(drifting_series, 60)
        assert len(chain) >= 3
        # chain members should land near the planted positions
        planted = list(range(50, 1300, 200))
        hits = sum(
            1 for m in chain.members
            if any(abs(m - pos) <= 45 for pos in planted)
        )
        assert hits >= len(chain) - 1

    def test_links_are_bidirectional(self, drifting_series):
        lr = stomp_left_right(drifting_series, 60)
        for chain in all_chains(drifting_series, 60):
            for a, b in zip(chain.members, chain.members[1:]):
                assert lr.right_index[a] == b
                assert lr.left_index[b] == a

    def test_span_property(self):
        from repro.core.chains import Chain

        chain = Chain(members=(10, 50, 90), length=20, total_link_distance=1.0)
        assert chain.span == 80
        assert len(chain) == 3

    def test_no_chain_raises(self, monkeypatch):
        import repro.core.chains as chains_module

        monkeypatch.setattr(chains_module, "all_chains", lambda t, length: [])
        with pytest.raises(InvalidParameterError):
            unanchored_chain(np.random.default_rng(0).standard_normal(100), 8)


class TestSegmentation:
    @pytest.fixture(scope="class")
    def two_regime_series(self):
        """Sine regime followed by a square-ish regime."""
        rng = np.random.default_rng(2)
        x = np.linspace(0, 30 * np.pi, 900)
        first = np.sin(x[:900])
        second = np.sign(np.sin(x[:900])) * 0.8
        t = np.concatenate([first, second]) + 0.05 * rng.standard_normal(1800)
        return t, 900

    def test_arc_curve_counts(self):
        index = np.array([2, 3, 0, 1])
        curve = arc_curve(index)
        assert curve.shape == (4,)
        assert curve[0] >= 1

    def test_cac_in_unit_interval(self, two_regime_series):
        t, _ = two_regime_series
        cac = fluss(t, 40)
        assert np.all(cac >= 0.0)
        assert np.all(cac <= 1.0)

    def test_edges_masked(self, two_regime_series):
        t, _ = two_regime_series
        cac = fluss(t, 40)
        assert (cac[:40] == 1.0).all()
        assert (cac[-40:] == 1.0).all()

    def test_boundary_found_near_regime_change(self, two_regime_series):
        t, boundary = two_regime_series
        found = regime_boundaries(t, 40, n_regimes=2)
        assert len(found) == 1
        assert abs(found[0] - boundary) <= 100

    def test_homogeneous_series_has_high_cac(self):
        x = np.linspace(0, 40 * np.pi, 1200)
        t = np.sin(x) + 0.05 * np.random.default_rng(1).standard_normal(1200)
        cac = fluss(t, 40)
        interior = cac[200:-200]
        assert np.median(interior) > 0.3

    def test_validation(self, two_regime_series):
        t, _ = two_regime_series
        with pytest.raises(InvalidParameterError):
            regime_boundaries(t, 40, n_regimes=1)
        with pytest.raises(InvalidParameterError):
            corrected_arc_curve(np.array([0, 1]), 5)


class TestAnnotation:
    def test_apply_annotation_pushes_suppressed_up(self, noise_series):
        mp = stomp(noise_series, 16)
        av = np.ones_like(mp.profile)
        av[:100] = 0.0
        corrected = apply_annotation(mp, av)
        fin = np.isfinite(mp.profile)
        assert np.all(
            corrected.profile[:100][fin[:100]]
            > mp.profile[:100][fin[:100]]
        )
        np.testing.assert_allclose(
            corrected.profile[100:][fin[100:]], mp.profile[100:][fin[100:]]
        )

    def test_motif_moves_out_of_suppressed_region(self, planted):
        mp = stomp(planted.series, planted.length)
        pair = mp.motif_pair()
        zone = mp.exclusion
        av = interval_annotation(
            len(mp),
            [(max(0, pair.a - zone), pair.a + zone),
             (max(0, pair.b - zone), pair.b + zone)],
        )
        corrected = apply_annotation(mp, av)
        new_pair = corrected.motif_pair()
        assert abs(new_pair.a - pair.a) >= zone or abs(new_pair.b - pair.b) >= zone

    def test_variance_annotation_suppresses_flat_regions(self):
        rng = np.random.default_rng(3)
        t = rng.standard_normal(400)
        t[100:180] = 5.0  # a flat shelf
        av = variance_annotation(t, 20)
        assert av[130] < 0.2
        assert av[300] > 0.3

    def test_variance_annotation_constant_series(self):
        av = variance_annotation(np.full(100, 2.0), 10)
        np.testing.assert_array_equal(av, 1.0)

    def test_validation(self, noise_series):
        mp = stomp(noise_series, 16)
        with pytest.raises(InvalidParameterError):
            apply_annotation(mp, np.ones(3))
        with pytest.raises(InvalidParameterError):
            apply_annotation(mp, np.full_like(mp.profile, 2.0))
        with pytest.raises(InvalidParameterError):
            interval_annotation(10, [(5, 5)])
