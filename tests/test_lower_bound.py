"""Property and unit tests for the Eq. 2 lower bound — VALMOD's core lemma.

Two properties carry the whole algorithm:

1. **Admissibility**: LB(d[i,j; l+k]) <= d[i,j; l+k] for all i, j, k.
2. **Rank preservation**: within one profile the LB ordering is the same
   for every horizon k.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lower_bound import (
    lower_bound_base,
    lower_bound_distance,
    lower_bound_from_base,
    lower_bound_profile,
    tightness_of_lower_bound,
)
from repro.analysis.ranking_study import lower_bound_rank_agreement
from repro.distance.znorm import znormalized_distance
from repro.exceptions import InvalidParameterError


def random_series(seed, n):
    return np.random.default_rng(seed).standard_normal(n)


class TestAdmissibility:
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(4, 24),
        st.integers(0, 20),
    )
    @settings(max_examples=120, deadline=None)
    def test_lb_never_exceeds_true_distance(self, seed, length, k):
        rng = np.random.default_rng(seed)
        n = length + k + int(rng.integers(length + k, 4 * (length + k)))
        t = rng.standard_normal(n)
        n_target = n - (length + k) + 1
        i = int(rng.integers(0, n_target))
        j = int(rng.integers(0, n_target))
        lb = lower_bound_distance(t, i, j, length, k)
        true = znormalized_distance(
            t[i : i + length + k], t[j : j + length + k]
        )
        assert lb <= true + 1e-7, (
            f"inadmissible bound: LB={lb} > d={true} (i={i}, j={j}, "
            f"l={length}, k={k})"
        )

    def test_admissible_on_structured_data(self, structured_series):
        t = structured_series
        for k in (0, 1, 5, 20):
            lb = lower_bound_profile(t, 100, 40, k)
            target = 40 + k
            for j in (0, 50, 150, 300):
                true = znormalized_distance(
                    t[100 : 100 + target], t[j : j + target]
                )
                assert lb[j] <= true + 1e-7

    def test_admissible_with_smoothly_varying_sigma(self):
        # A series whose local variance grows: sigma ratios < 1, the
        # regime where the bound can stay tight over many steps.
        x = np.linspace(0, 10, 400)
        t = np.sin(5 * x) * (0.2 + x)
        for k in (1, 10, 40):
            lb = lower_bound_profile(t, 10, 30, k)
            target = 30 + k
            n_target = t.size - target + 1
            for j in range(0, n_target, 37):
                true = znormalized_distance(
                    t[10 : 10 + target], t[j : j + target]
                )
                assert lb[j] <= true + 1e-7


class TestRankPreservation:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_lb_ordering_is_k_invariant(self, seed):
        rng = np.random.default_rng(seed)
        t = rng.standard_normal(200)
        owner, length = 40, 16
        k_far = 24
        n_target = t.size - (length + k_far) + 1
        lb1 = lower_bound_profile(t, owner, length, 1)[:n_target]
        lb2 = lower_bound_profile(t, owner, length, k_far)[:n_target]
        # argsort with a stable tiebreak must give identical permutations
        order1 = np.lexsort((np.arange(n_target), np.round(lb1, 10)))
        order2 = np.lexsort((np.arange(n_target), np.round(lb2, 10)))
        np.testing.assert_array_equal(order1, order2)

    def test_scaling_between_horizons_is_constant(self):
        t = random_series(3, 300)
        owner, length = 50, 20
        lb_k1 = lower_bound_profile(t, owner, length, 1)
        lb_k2 = lower_bound_profile(t, owner, length, 2)
        n = lb_k2.size
        nonzero = lb_k1[:n] > 1e-12
        ratios = lb_k2[nonzero] / lb_k1[:n][nonzero]
        assert np.ptp(ratios) < 1e-9, "the k-step scaling must be per-profile constant"

    def test_rank_agreement_helper_reports_one(self, structured_series):
        agreement = lower_bound_rank_agreement(
            structured_series, owner=30, length=25, k1=0, k2=15, top=10
        )
        assert agreement == 1.0


class TestFormula:
    def test_negative_correlation_branch(self):
        # Anti-correlated windows: LB = sqrt(l) * sigma ratio.
        base = lower_bound_base(-0.8, 16, sigma_owner=2.0)
        assert base == pytest.approx(math.sqrt(16) * 2.0)

    def test_positive_correlation_branch(self):
        base = lower_bound_base(0.6, 25, sigma_owner=1.0)
        assert base == pytest.approx(math.sqrt(25 * (1 - 0.36)))

    def test_perfect_correlation_gives_zero(self):
        assert lower_bound_base(1.0, 10, 1.0) == pytest.approx(0.0)

    def test_vectorized_matches_scalar(self):
        qs = np.array([-0.5, 0.0, 0.3, 0.9])
        vec = lower_bound_base(qs, 12, 1.5)
        for q, v in zip(qs, vec):
            assert v == pytest.approx(lower_bound_base(float(q), 12, 1.5))

    def test_from_base_division(self):
        assert lower_bound_from_base(6.0, 2.0) == pytest.approx(3.0)

    def test_from_base_constant_owner_is_vacuous(self):
        assert lower_bound_from_base(6.0, 0.0) == 0.0

    def test_invalid_length(self):
        with pytest.raises(InvalidParameterError):
            lower_bound_base(0.5, 0, 1.0)

    def test_lower_bound_distance_validation(self):
        t = random_series(0, 50)
        with pytest.raises(InvalidParameterError):
            lower_bound_distance(t, 0, 45, 10, 20)  # owner extension too long
        with pytest.raises(InvalidParameterError):
            lower_bound_distance(t, 0, 0, 10, -1)

    def test_profile_owner_out_of_range(self):
        t = random_series(1, 60)
        with pytest.raises(InvalidParameterError):
            lower_bound_profile(t, 50, 10, 10)


class TestTightness:
    def test_range(self, structured_series):
        t = structured_series
        lb = lower_bound_profile(t, 60, 30, 10)
        target = 40
        true = np.array(
            [
                znormalized_distance(t[60 : 60 + target], t[j : j + target])
                for j in range(t.size - target + 1)
            ]
        )
        tlb = tightness_of_lower_bound(lb, true)
        assert np.all(tlb >= 0.0)
        assert np.all(tlb <= 1.0 + 1e-9)

    def test_zero_distance_defines_one(self):
        assert tightness_of_lower_bound(0.0, 0.0) == 1.0

    def test_scalar_and_array(self):
        assert tightness_of_lower_bound(1.0, 2.0) == pytest.approx(0.5)
        out = tightness_of_lower_bound(np.array([1.0, 3.0]), np.array([2.0, 4.0]))
        np.testing.assert_allclose(out, [0.5, 0.75])
