"""Table 1 — characteristics of the evaluation datasets.

Prints paper-target vs measured min/max/mean/std for each synthetic
dataset family, plus the generation cost (the benched quantity).
"""

from _common import DATASETS, bench_grid, save_report
from repro.analysis.stats import dataset_statistics
from repro.datasets.registry import dataset_spec, load_dataset
from repro.harness.reporting import format_table


def test_table1_dataset_characteristics(benchmark):
    grid = bench_grid()
    n = grid.default_size * 2

    def generate_all():
        return {name: load_dataset(name, n, seed=0) for name in DATASETS}

    series = benchmark.pedantic(generate_all, iterations=1, rounds=1)

    rows = []
    for name in DATASETS:
        spec = dataset_spec(name)
        stats = dataset_statistics(series[name])
        rows.append(
            (
                name,
                f"{spec.paper_min:.5g}/{stats.minimum:.4g}",
                f"{spec.paper_max:.5g}/{stats.maximum:.4g}",
                f"{spec.paper_mean:.5g}/{stats.mean:.4g}",
                f"{spec.paper_std:.5g}/{stats.std:.4g}",
                f"{spec.paper_points}/{stats.n_points}",
            )
        )
        # mean and std are matched by construction (scaled-down n).
        assert stats.std > 0
    save_report(
        "table1_datasets",
        format_table(
            ["dataset", "MIN paper/ours", "MAX paper/ours",
             "MEAN paper/ours", "STD paper/ours", "points paper/ours"],
            rows,
        ),
    )
