"""Shared configuration and helpers for the benchmark suite.

Every bench prints the same rows/series the corresponding paper figure
plots and also appends them to ``benchmarks/results/<bench>.txt`` so the
output survives the pytest-benchmark summary.  Sizes follow the scaled
Table-2 grid (see DESIGN.md); raise ``REPRO_BENCH_SCALE`` to run larger.
"""

from __future__ import annotations

import json
import os
import subprocess
import tempfile
import time
from pathlib import Path
from typing import Any, Dict

from repro import obs
from repro.harness.config import BenchmarkGrid, env_scale

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: all five dataset families of Table 1.
DATASETS = ("ECG", "GAP", "ASTRO", "EMG", "EEG")

#: the four competitors of Section 6.1.
ALGORITHMS = ("VALMOD", "STOMP", "QUICKMOTIF", "MOEN")


def bench_grid() -> BenchmarkGrid:
    """The benchmark grid: Table 2 scaled for wall-clock sanity.

    The ratios of the paper's grid are preserved where it matters
    (range/length); absolute sizes are shrunk so the whole suite runs in
    minutes on a laptop.  ``REPRO_BENCH_SCALE`` multiplies sizes.
    """
    scale = env_scale()

    def s(value: int, lo: int = 2) -> int:
        return max(lo, int(round(value * scale)))

    return BenchmarkGrid(
        motif_lengths=[s(16), s(24), s(32), s(48), s(64)],
        motif_ranges=[s(4), s(6), s(8), s(12), s(16)],
        series_sizes=[s(512, 128), s(1024, 128), s(2048, 128), s(3072, 128), s(4096, 128)],
        p_values=[5, 10, 15, 20, 50, 100, 150],
        default_length=s(32),
        default_range=s(8),
        default_size=s(2048, 128),
        default_p=50,
        timeout_seconds=60.0 * max(1.0, scale),
        k_values=[10, 20, 40, 60, 80],
        d_values=[2, 3, 4, 5, 6],
        default_k=40,
        default_d=4,
    )


def bench_dataset(name: str, n: int, seed: int = 0):
    """Load a dataset family with feature scales matched to the grid.

    The paper's windows (256-4096 points) cover one-to-many structural
    features of each dataset (heartbeats, CAP cycles, daily cycles).  The
    scaled grid uses 16-64-point windows, so the generators' feature
    sizes are shrunk by the same ratio — otherwise a 32-point window of
    ECG would see a *fraction* of a beat, which is a different (and
    harder) regime than the paper's.
    """
    from repro.datasets.registry import load_dataset

    grid = bench_grid()
    kwargs = {
        "ECG": {"beat_length": max(12, (3 * grid.default_length) // 4)},
        "EEG": {"cycle_length": max(64, grid.default_length * 6)},
        "GAP": {"day_length": max(64, grid.default_length * 8)},
        "EMG": {},
        "ASTRO": {},
    }.get(name.upper(), {})
    return load_dataset(name, n, seed=seed, **kwargs)


def _git_sha() -> str:
    """The repo's HEAD commit, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def run_metadata() -> Dict[str, Any]:
    """Provenance stamped into every persisted result file."""
    return {
        "git_sha": _git_sha(),
        "repro_trace_env": os.environ.get(obs.TRACE_ENV),
        "tracing_enabled": obs.enabled(),
        "bench_scale": env_scale(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` without racing concurrent workers.

    ``mkdir(parents=True, exist_ok=True)`` tolerates simultaneous
    creation (plain ``mkdir(exist_ok=True)`` still raced on a missing
    parent), and the tempfile + ``os.replace`` pair means readers never
    observe a half-written file.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_result_json(name: str, payload: Dict[str, Any]) -> Path:
    """Persist a machine-readable result with provenance metadata."""
    merged = dict(payload)
    merged["meta"] = run_metadata()
    path = RESULTS_DIR / f"{name}.json"
    _atomic_write(path, json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return path


def save_report(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/results/.

    When the :mod:`repro.obs` tracer is live, a ``<name>.trace.json``
    sidecar with the full trace report is written next to the text.
    """
    print(f"\n===== {name} =====")
    print(text)
    _atomic_write(RESULTS_DIR / f"{name}.txt", text + "\n")
    if obs.enabled():
        from repro.obs import build_report, report_to_json

        _atomic_write(
            RESULTS_DIR / f"{name}.trace.json",
            report_to_json(build_report()) + "\n",
        )


def fast_mode() -> bool:
    """REPRO_BENCH_FAST=1 trims sweeps to smoke-test size."""
    return os.environ.get("REPRO_BENCH_FAST", "0") not in ("0", "", "false")
