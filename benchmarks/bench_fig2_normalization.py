"""Figure 2 — comparing corrections for ranking different-length motifs.

Prints the three distance series (raw, divide-by-l, sqrt(1/l)) over the
length sweep and their max/min spreads; the paper's conclusion — only
sqrt(1/l) is near-invariant — is asserted.
"""

from _common import save_report
from repro.analysis.normalization_study import (
    correction_spreads,
    normalization_comparison,
)
from repro.datasets import trace_pair_at_lengths
from repro.harness.reporting import format_table

LENGTHS = [100, 140, 180, 220, 260, 300, 340, 380, 420, 460]


def test_fig2_length_normalization(benchmark):
    rows = benchmark.pedantic(
        lambda: normalization_comparison(trace_pair_at_lengths(LENGTHS)),
        iterations=1,
        rounds=1,
    )
    spreads = correction_spreads(rows)

    table = format_table(
        ["length", "raw ED", "ED / l", "ED * sqrt(1/l)"],
        [
            (r.length, f"{r.raw:.4f}", f"{r.divided_by_length:.6f}",
             f"{r.sqrt_corrected:.4f}")
            for r in rows
        ],
    )
    summary = "\n".join(
        f"spread[{name}] = {value:.3f}" for name, value in spreads.items()
    )
    save_report("fig2_normalization", table + "\n\n" + summary)

    # Paper shape: sqrt(1/l) nearly flat, both others visibly biased.
    assert spreads["sqrt(1/l)"] < 1.1
    assert spreads["none"] > 1.5
    assert spreads["divide-by-l"] > 1.5
    # raw is biased toward SHORT patterns, divide-by-l toward LONG ones.
    assert rows[0].raw < rows[-1].raw
    assert rows[0].divided_by_length > rows[-1].divided_by_length
