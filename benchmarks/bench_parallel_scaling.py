"""Parallel engine scaling: speedup of parallel-stomp vs worker count.

Not a paper figure — the engineering bench for the chunked parallel
engine (the substrate of the ROADMAP's scalability goal).  Runs the same
matrix-profile computation at increasing ``n_jobs``, verifies every run
is bitwise identical to serial STOMP, and records wall-clock speedups to
``benchmarks/results/BENCH_parallel_scaling.json`` so the perf
trajectory is machine-readable across commits.

Defaults to a 50k-point series; ``REPRO_BENCH_FAST=1`` trims to smoke
size and ``REPRO_BENCH_SCALE`` rescales.  Speedups are only meaningful
on a machine with as many idle cores as the largest worker count.
"""

import os
import time

import numpy as np
import pytest

from _common import bench_dataset, fast_mode, save_report, save_result_json
from repro.harness.reporting import format_table
from repro.matrixprofile import parallel_stomp, stomp

WORKER_COUNTS = (1, 2, 4)


def _bench_size() -> int:
    if fast_mode():
        return 4000
    from repro.harness.config import env_scale

    return max(1024, int(round(50_000 * env_scale())))


def _bench_length(n: int) -> int:
    return max(16, min(256, n // 200))


@pytest.fixture(scope="module")
def series():
    return bench_dataset("ECG", _bench_size(), seed=3)


def test_parallel_scaling(benchmark, series):
    length = _bench_length(series.size)
    reference = stomp(series, length)

    def sweep():
        rows = []
        for n_jobs in WORKER_COUNTS:
            start = time.perf_counter()
            mp = parallel_stomp(series, length, n_jobs=n_jobs)
            seconds = time.perf_counter() - start
            rows.append((n_jobs, seconds, mp))
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    for n_jobs, _, mp in rows:
        assert np.array_equal(mp.profile, reference.profile), (
            f"parallel-stomp n_jobs={n_jobs} diverged from serial stomp"
        )
        assert np.array_equal(mp.index, reference.index)

    base = rows[0][1]
    report_rows = []
    payload = {
        "bench": "parallel_scaling",
        "series_size": int(series.size),
        "length": int(length),
        "cpu_count": os.cpu_count(),
        "bitwise_identical_to_serial": True,
        "workers": [],
    }
    for n_jobs, seconds, _ in rows:
        speedup = base / seconds if seconds > 0 else float("inf")
        report_rows.append((n_jobs, f"{seconds:.3f}", f"{speedup:.2f}x"))
        payload["workers"].append(
            {"n_jobs": n_jobs, "seconds": seconds, "speedup": speedup}
        )
    save_report(
        "parallel_scaling",
        format_table(["n_jobs", "seconds", "speedup vs 1 worker"], report_rows)
        + f"\nseries={series.size} length={length} cpus={os.cpu_count()}",
    )
    save_result_json("BENCH_parallel_scaling", payload)
