"""Quantifying the paper's approximate-methods critique (Section 7).

The paper dismisses the approximate variable-length motif finders
because "the amount of error can [not] be bounded, or at least known".
This bench measures that error concretely: the grammar-style SAX
baseline vs VALMOD's exact answer, per dataset — recall (how many
lengths got *any* answer), and the distance inflation where it did.
"""

import time

from _common import DATASETS, bench_dataset, bench_grid, save_report
from repro.baselines.grammar_motif import grammar_motifs
from repro.core.valmod import Valmod
from repro.harness.reporting import format_table


def test_approximate_vs_exact(benchmark):
    grid = bench_grid()
    l_min = grid.default_length
    l_max = l_min + grid.default_range

    def measure():
        rows = []
        stats = []
        for name in DATASETS:
            series = bench_dataset(name, grid.default_size, seed=0)
            start = time.perf_counter()
            exact = Valmod(series, l_min, l_max, p=grid.default_p).run().motif_pairs
            exact_seconds = time.perf_counter() - start
            start = time.perf_counter()
            approx = grammar_motifs(series, l_min, l_max)
            approx_seconds = time.perf_counter() - start
            n_lengths = l_max - l_min + 1
            covered = len(approx)
            inflations = [
                approx[length].distance / max(exact[length].distance, 1e-9)
                for length in approx
            ]
            worst = max(inflations) if inflations else float("nan")
            median = sorted(inflations)[len(inflations) // 2] if inflations else float("nan")
            rows.append(
                (
                    name,
                    f"{approx_seconds:.2f}/{exact_seconds:.2f}",
                    f"{covered}/{n_lengths}",
                    f"{median:.2f}x",
                    f"{worst:.2f}x",
                )
            )
            stats.append((covered, n_lengths, inflations))
        return rows, stats

    rows, stats = benchmark.pedantic(measure, iterations=1, rounds=1)
    save_report(
        "approximate_baseline",
        format_table(
            ["dataset", "approx/exact seconds", "lengths answered",
             "median inflation", "worst inflation"],
            rows,
        ),
    )

    # The paper's point, measured: the approximate method's answers are
    # never better than exact (they are real pairs), and somewhere the
    # error is material (miss or >5% inflation).
    has_material_error = False
    for covered, n_lengths, inflations in stats:
        assert all(inf >= 1.0 - 1e-9 for inf in inflations)
        if covered < n_lengths or any(inf > 1.05 for inf in inflations):
            has_material_error = True
    assert has_material_error, (
        "expected at least one dataset where the approximate method errs"
    )
