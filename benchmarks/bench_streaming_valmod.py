"""Streaming VALMOD: amortized per-append cost vs batch recomputation.

The streaming engine's pitch is that a monitored feed does not need a
from-scratch variable-length sweep per refresh: the eager per-append
layer maintains exact bounds for free (no engine cells), and the
periodic materializations warm-start the pruned discord driver from the
maintained bounds, so most lengths are certified without computing
their profiles.  ``engine.cells`` — distance cells computed by the
registered engines — is the scoreboard: hardware-independent and
exactly comparable between the two drivers.

The workload streams a feed in chunks, refreshing exact motifs and
discords after every chunk, and charges the same refresh cadence to a
batch baseline that recomputes ``valmod`` + ``find_discords_pruned``
from scratch on the identical window.  Results are asserted identical
chunk by chunk (the differential wall, riding along in the benchmark).

Persists ``benchmarks/results/BENCH_streaming_valmod.json`` with
per-chunk cell counts for both drivers.  Committed full-mode baselines
must show (a) the streaming total strictly below the batch total and
(b) a warm-chunk cell ratio below ``MAX_WARM_RATIO`` — the amortized
per-append cost flattens once the maintained bounds are warm, while
the batch baseline re-pays the full sweep every refresh.  CI runs the
smoke mode (``REPRO_BENCH_FAST=1``), which keeps the identity assertion
but not the cost bars.
"""

import time

import numpy as np

from _common import fast_mode, save_report, save_result_json
from repro import obs
from repro.core.discords_variable import find_discords_pruned
from repro.core.valmod import valmod
from repro.harness.reporting import format_table
from repro.matrixprofile.streaming_valmod import StreamingValmod

#: headline configuration (the committed baseline).
FULL_INIT, FULL_STREAM, FULL_CHUNK, FULL_RANGE = 600, 600, 100, (16, 28)
SMOKE_INIT, SMOKE_STREAM, SMOKE_CHUNK, SMOKE_RANGE = 300, 200, 100, (16, 22)

P, K = 10, 3

#: acceptance bar: warm streaming refreshes must cost at most this
#: fraction of the batch refresh on the same window.
MAX_WARM_RATIO = 0.5


def _workload(n: int) -> np.ndarray:
    """Noisy sine with bump anomalies early in the feed.

    The monitoring regime the streaming engine targets: the background
    is quasi-periodic (stable motifs), the known anomalies sit in the
    already-seen prefix (stable discords), and the streamed tail is
    more of the same signal — so the maintained bounds stay tight and
    warm refreshes should prune nearly every discord length.
    """
    rng = np.random.default_rng(13)
    x = np.linspace(0.0, 0.02 * np.pi * n, n)
    t = np.sin(x) + 0.05 * rng.standard_normal(n)
    for pos in (n // 8, n // 4, (3 * n) // 8):
        t[pos : pos + 20] += 4.0 * np.hanning(20)
    return t


def _cells(before, after) -> int:
    return int(after.get("engine.cells", 0) - before.get("engine.cells", 0))


def _discord_tuples(discords):
    return [
        (d.length, d.start, d.distance, d.normalized_distance) for d in discords
    ]


def test_streaming_vs_batch_recompute(benchmark):
    smoke = fast_mode()
    init, n_stream, chunk_size = (
        (SMOKE_INIT, SMOKE_STREAM, SMOKE_CHUNK)
        if smoke
        else (FULL_INIT, FULL_STREAM, FULL_CHUNK)
    )
    l_min, l_max = SMOKE_RANGE if smoke else FULL_RANGE
    series = _workload(init + n_stream)

    def run():
        chunks = []
        with obs.tracing(True):
            obs.reset()
            stream = StreamingValmod(
                series[:init], l_min, l_max, p=P, k_discords=K
            )
            stream_seconds = 0.0
            batch_seconds = 0.0
            for start in range(init, init + n_stream, chunk_size):
                end = min(start + chunk_size, init + n_stream)
                window = series[:end]

                before = dict(obs.get_tracer().counters())
                t0 = time.perf_counter()
                stream.extend(series[start:end])
                s_motifs = stream.motifs()
                s_discords = stream.discords()
                stream_seconds += time.perf_counter() - t0
                mid = dict(obs.get_tracer().counters())
                t0 = time.perf_counter()
                b_motifs = valmod(window, l_min, l_max, p=P)
                b_discords = find_discords_pruned(
                    window, l_min, l_max, k=K, p=P
                )
                batch_seconds += time.perf_counter() - t0
                after = dict(obs.get_tracer().counters())

                # the differential wall rides along with the timing run
                assert s_motifs.motif_pairs == b_motifs.motif_pairs
                assert _discord_tuples(s_discords) == _discord_tuples(
                    b_discords
                )
                chunks.append(
                    {
                        "window_points": int(end),
                        "appends": int(end - start),
                        "streaming_cells": _cells(before, mid),
                        "batch_cells": _cells(mid, after),
                    }
                )
        return chunks, stream_seconds, batch_seconds

    chunks, stream_seconds, batch_seconds = benchmark.pedantic(
        run, iterations=1, rounds=1
    )

    streaming_total = sum(c["streaming_cells"] for c in chunks)
    batch_total = sum(c["batch_cells"] for c in chunks)
    appends_total = sum(c["appends"] for c in chunks)
    # chunk 0 pays the cold materialization; later chunks are warm
    warm = chunks[1:] if len(chunks) > 1 else chunks
    warm_ratio = sum(c["streaming_cells"] for c in warm) / max(
        1, sum(c["batch_cells"] for c in warm)
    )

    payload = {
        "bench": "streaming_valmod",
        "init_points": int(init),
        "streamed_points": int(appends_total),
        "chunk_size": int(chunk_size),
        "l_min": int(l_min),
        "l_max": int(l_max),
        "p": int(P),
        "k_discords": int(K),
        "smoke": smoke,
        "identical": True,
        "streaming_seconds": stream_seconds,
        "batch_seconds": batch_seconds,
        "streaming_cells_total": int(streaming_total),
        "batch_cells_total": int(batch_total),
        "streaming_cells_per_append": streaming_total / appends_total,
        "batch_cells_per_append": batch_total / appends_total,
        "warm_cell_ratio": warm_ratio,
        "chunks": chunks,
    }
    save_report(
        "streaming_valmod",
        format_table(
            ["window", "appends", "streaming cells", "batch cells"],
            [
                (c["window_points"], c["appends"], c["streaming_cells"],
                 c["batch_cells"])
                for c in chunks
            ],
        )
        + f"\ntotals: streaming {streaming_total} vs batch {batch_total} "
        f"cells over {appends_total} appends "
        f"(warm ratio {warm_ratio:.2f}) smoke={smoke}",
    )
    save_result_json("BENCH_streaming_valmod", payload)

    if not smoke:
        assert streaming_total < batch_total
        assert warm_ratio < MAX_WARM_RATIO
