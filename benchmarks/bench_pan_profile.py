"""Pan matrix profile: VALMOD-assisted vs exhaustive construction.

The Section-8 extension, quantified: building the complete all-lengths
matrix profile by reusing Algorithm 4's certified rows (repairing only
the non-valid ones) vs one STOMP per length.  Both are exact; the
assisted build should win wherever the lower bound prunes — i.e. on the
structured datasets.
"""

import numpy as np

from _common import bench_dataset, bench_grid, save_report
from repro.core.pan import compute_pan_matrix_profile
from repro.harness.reporting import format_table


def test_pan_profile_construction(benchmark):
    grid = bench_grid()
    l_min = grid.default_length
    l_max = l_min + grid.default_range

    def measure():
        rows = []
        ratios = {}
        for name in ("ECG", "EEG", "EMG"):
            series = bench_dataset(name, grid.default_size, seed=0)
            assisted = compute_pan_matrix_profile(
                series, l_min, l_max, strategy="valmod", p=grid.default_p
            )
            exhaustive = compute_pan_matrix_profile(
                series, l_min, l_max, strategy="exact"
            )
            finite = np.isfinite(exhaustive.distances)
            assert np.allclose(
                assisted.distances[finite], exhaustive.distances[finite], atol=1e-6
            ), f"pan strategies disagree on {name}"
            ratios[name] = exhaustive.build_seconds / max(
                assisted.build_seconds, 1e-9
            )
            rows.append(
                (
                    name,
                    f"{assisted.build_seconds:.2f}",
                    f"{exhaustive.build_seconds:.2f}",
                    assisted.repaired_rows,
                    f"{ratios[name]:.2f}x",
                )
            )
        return rows, ratios

    rows, ratios = benchmark.pedantic(measure, iterations=1, rounds=1)
    save_report(
        "pan_profile",
        format_table(
            ["dataset", "VALMOD-assisted (s)", "exhaustive (s)",
             "repaired rows", "speedup"],
            rows,
        ),
    )
    # On the structured (prunable) datasets the assisted build must win.
    assert ratios["ECG"] > 1.0
    assert ratios["EEG"] > 1.0
