"""Figure 12 — scalability over the motif length range.

The headline experiment: the wider the range, the more VALMOD's
reuse-across-lengths pays off, while every per-length baseline grows
linearly with the range width.
"""

from _common import ALGORITHMS, DATASETS, bench_dataset, bench_grid, fast_mode, save_report
from repro.harness.experiments import sweep_motif_range
from repro.harness.reporting import format_table


def test_fig12_scalability_over_motif_range(benchmark):
    grid = bench_grid()
    datasets = DATASETS[:2] if fast_mode() else DATASETS
    result = benchmark.pedantic(
        lambda: sweep_motif_range(
            datasets=datasets, algorithms=ALGORITHMS, grid=grid,
            loader=bench_dataset,
        ),
        iterations=1,
        rounds=1,
    )
    table = format_table(result.headers(), result.table_rows())
    speedups = result.speedup_vs("STOMP")
    summary = (
        f"median VALMOD speedup vs STOMP-range: "
        f"{sorted(speedups)[len(speedups) // 2]:.2f}x; "
        f"max: {max(speedups):.2f}x"
    )
    save_report("fig12_motif_range", table + "\n\n" + summary)

    assert all(not row["VALMOD"].dnf for row in result.rows)

    # Paper shape: VALMOD's advantage over STOMP-range *grows* with the
    # range width (compare the narrowest and widest sweep points).
    by_dataset = {}
    for row in result.rows:
        by_dataset.setdefault(row["dataset"], []).append(row)
    growing = 0
    for rows in by_dataset.values():
        first, last = rows[0], rows[-1]
        if first["STOMP"].dnf or last["STOMP"].dnf:
            growing += 1  # STOMP DNF at wide ranges is the strongest form
            continue
        ratio_first = first["STOMP"].seconds / max(first["VALMOD"].seconds, 1e-9)
        ratio_last = last["STOMP"].seconds / max(last["VALMOD"].seconds, 1e-9)
        if ratio_last > ratio_first:
            growing += 1
    assert growing >= len(by_dataset) / 2
