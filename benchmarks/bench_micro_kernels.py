"""Micro-benchmarks of the computational kernels.

Not a paper figure — engineering-level timings (with pytest-benchmark's
statistics) for the primitives the figures are built from: MASS vs the
naive profile, one STOMP row update, the Eq. 2 lower-bound kernel, and
one ComputeSubMP step.
"""

import numpy as np
import pytest

from _common import bench_grid
from repro.core.compute_mp import compute_matrix_profile
from repro.core.compute_submp import compute_submp
from repro.core.lower_bound import lower_bound_base
from repro.distance.mass import mass
from repro.distance.profile import naive_distance_profile
from repro.distance.sliding import moving_mean_std, sliding_dot_product
from _common import bench_dataset
from repro.matrixprofile import stomp


@pytest.fixture(scope="module")
def series():
    return bench_dataset("ECG", bench_grid().default_size, seed=0)


@pytest.fixture(scope="module")
def length():
    return bench_grid().default_length


def test_micro_mass(benchmark, series, length):
    benchmark(mass, series, 100, length)


def test_micro_naive_profile_reference(benchmark, series, length):
    # The O(n l) reference MASS is measured against (same output).
    short = series[:1024]
    benchmark(naive_distance_profile, short, 100, length)


def test_micro_sliding_dot_product(benchmark, series, length):
    query = series[:length]
    benchmark(sliding_dot_product, query, series)


def test_micro_moving_stats(benchmark, series, length):
    benchmark(moving_mean_std, series, length)


def test_micro_lower_bound_kernel(benchmark, series, length):
    rng = np.random.default_rng(0)
    correlations = rng.uniform(-1, 1, series.size - length + 1)
    benchmark(lower_bound_base, correlations, length, 1.0)


def test_micro_full_stomp(benchmark, series, length):
    benchmark.pedantic(stomp, args=(series, length), iterations=1, rounds=3)


def test_micro_compute_mp_with_listdp(benchmark, series, length):
    benchmark.pedantic(
        compute_matrix_profile, args=(series, length, 50), iterations=1, rounds=3
    )


def test_micro_compute_submp_step(benchmark, series, length):
    def one_step():
        _, store = compute_matrix_profile(series, length, 50)
        return compute_submp(series, store, length + 1)

    result = benchmark.pedantic(one_step, iterations=1, rounds=3)
    assert result.sub_profile.size == series.size - length
