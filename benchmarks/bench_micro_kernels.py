"""Micro-benchmarks of the computational kernels.

Not a paper figure — engineering-level timings (with pytest-benchmark's
statistics) for the primitives the figures are built from: MASS vs the
naive profile, one STOMP row update, the Eq. 2 lower-bound kernel, one
ComputeSubMP step, and the blocked diagonal kernel vs the rowwise STOMP
schedule (``micro_stomp_blocked_vs_rowwise``).

The blocked-vs-rowwise comparison persists cells/second numbers to
``benchmarks/results/BENCH_micro_stomp_blocked_vs_rowwise.json``; CI
runs it in smoke mode (``REPRO_BENCH_FAST=1``), the full n=16384/l=256
measurement is committed alongside the kernel.
"""

import time

import numpy as np
import pytest

from _common import bench_dataset, bench_grid, fast_mode, save_report, save_result_json
from repro.core.compute_mp import compute_matrix_profile
from repro.core.compute_submp import compute_submp
from repro.core.lower_bound import lower_bound_base
from repro.distance.mass import mass
from repro.distance.profile import naive_distance_profile
from repro.distance.sliding import moving_mean_std, sliding_dot_product
from repro.harness.reporting import format_table
from repro.kernels import DEFAULT_BLOCK_ROWS, SeriesContext, blocked_stomp
from repro.matrixprofile import stomp
from repro.matrixprofile.exclusion import contributing_cells, exclusion_zone_half_width


@pytest.fixture(scope="module")
def series():
    return bench_dataset("ECG", bench_grid().default_size, seed=0)


@pytest.fixture(scope="module")
def length():
    return bench_grid().default_length


def test_micro_mass(benchmark, series, length):
    benchmark(mass, series, 100, length)


def test_micro_naive_profile_reference(benchmark, series, length):
    # The O(n l) reference MASS is measured against (same output).
    short = series[:1024]
    benchmark(naive_distance_profile, short, 100, length)


def test_micro_sliding_dot_product(benchmark, series, length):
    query = series[:length]
    benchmark(sliding_dot_product, query, series)


def test_micro_moving_stats(benchmark, series, length):
    benchmark(moving_mean_std, series, length)


def test_micro_lower_bound_kernel(benchmark, series, length):
    rng = np.random.default_rng(0)
    correlations = rng.uniform(-1, 1, series.size - length + 1)
    benchmark(lower_bound_base, correlations, length, 1.0)


def test_micro_full_stomp(benchmark, series, length):
    benchmark.pedantic(stomp, args=(series, length), iterations=1, rounds=3)


def test_micro_compute_mp_with_listdp(benchmark, series, length):
    benchmark.pedantic(
        compute_matrix_profile, args=(series, length, 50), iterations=1, rounds=3
    )


def test_micro_compute_submp_step(benchmark, series, length):
    def one_step():
        _, store = compute_matrix_profile(series, length, 50)
        return compute_submp(series, store, length + 1)

    result = benchmark.pedantic(one_step, iterations=1, rounds=3)
    assert result.sub_profile.size == series.size - length


# ---------------------------------------------------------------------------
# Blocked diagonal kernel vs rowwise STOMP (ISSUE: micro_stomp_blocked_vs_rowwise)
# ---------------------------------------------------------------------------

#: block sizes swept in the full run (smoke keeps the first and default).
BLOCK_SIZES = (16, 32, DEFAULT_BLOCK_ROWS, 128)

#: the headline configuration the acceptance bar is measured at.
FULL_N, FULL_LENGTH = 16_384, 256
SMOKE_N, SMOKE_LENGTH = 3_072, 64

#: floor for blocked-f64 over rowwise at the default block size (full mode).
MIN_SPEEDUP = 2.0


def _best_seconds(fn, rounds):
    """Min-of-rounds wall clock: robust to scheduler noise on small boxes."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_micro_stomp_blocked_vs_rowwise(benchmark):
    smoke = fast_mode()
    n = SMOKE_N if smoke else FULL_N
    length = SMOKE_LENGTH if smoke else FULL_LENGTH
    rounds = 1 if smoke else 3
    block_sizes = (BLOCK_SIZES[0], DEFAULT_BLOCK_ROWS) if smoke else BLOCK_SIZES

    series = bench_dataset("ECG", n, seed=7)
    ctx = SeriesContext(series)
    n_subs = series.size - length + 1
    cells = contributing_cells(n_subs, exclusion_zone_half_width(length))

    reference = stomp(series, length, context=ctx)

    def sweep():
        rows = [("rowwise", _best_seconds(lambda: stomp(series, length, context=ctx), rounds))]
        for block in block_sizes:
            rows.append(
                (
                    f"blocked B={block}",
                    _best_seconds(
                        lambda b=block: blocked_stomp(series, length, block_rows=b, context=ctx),
                        rounds,
                    ),
                )
            )
        rows.append(
            (
                f"blocked-f32 B={DEFAULT_BLOCK_ROWS}",
                _best_seconds(
                    lambda: blocked_stomp(series, length, precision="float32", context=ctx),
                    rounds,
                ),
            )
        )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)

    # Correctness stays pinned to the timing run: the default-block profile
    # must match the rowwise engine to rounding.
    blocked_mp = blocked_stomp(series, length, context=ctx)
    np.testing.assert_allclose(
        blocked_mp.profile, reference.profile, rtol=0.0, atol=1e-8
    )

    rowwise_seconds = rows[0][1]
    payload = {
        "bench": "micro_stomp_blocked_vs_rowwise",
        "series_size": int(series.size),
        "length": int(length),
        "n_subs": int(n_subs),
        "cells": int(cells),
        "default_block_rows": int(DEFAULT_BLOCK_ROWS),
        "smoke": smoke,
        "engines": [],
    }
    report_rows = []
    default_speedup = None
    for label, seconds in rows:
        cps = cells / seconds if seconds > 0 else float("inf")
        speedup = rowwise_seconds / seconds if seconds > 0 else float("inf")
        if label == f"blocked B={DEFAULT_BLOCK_ROWS}":
            default_speedup = speedup
        payload["engines"].append(
            {
                "engine": label,
                "seconds": seconds,
                "cells_per_second": cps,
                "speedup_vs_rowwise": speedup,
            }
        )
        report_rows.append((label, f"{seconds:.3f}", f"{cps:.3e}", f"{speedup:.2f}x"))

    save_report(
        "micro_stomp_blocked_vs_rowwise",
        format_table(
            ["engine", "seconds", "cells/second", "speedup vs rowwise"], report_rows
        )
        + f"\nseries={series.size} length={length} cells={cells} smoke={smoke}",
    )
    save_result_json("BENCH_micro_stomp_blocked_vs_rowwise", payload)

    assert default_speedup is not None
    if not smoke:
        # The acceptance bar: blocked f64 at the default block size must be
        # at least MIN_SPEEDUP faster than the rowwise schedule.
        assert default_speedup >= MIN_SPEEDUP, (
            f"blocked B={DEFAULT_BLOCK_ROWS} speedup {default_speedup:.2f}x "
            f"below the {MIN_SPEEDUP:.1f}x bar"
        )
