"""MAD-style discord pruning: pruned vs full-profile driver.

Not a paper figure of VALMOD itself — the discord extension ("Matrix
Profile Goes MAD", ROADMAP item 3).  The workload injects ``K`` bump
anomalies of similar width into a noisy sine and scans a length range
extending well past that width, the regime the pruning targets: once
the top-K discords are found near the anomalies' natural length, the
Eq. 2 bounds certify most remaining lengths as unable to compete.

Persists ``benchmarks/results/BENCH_mad_discords.json`` with both
timings, the obs pruning counters, and the pruned fraction; the
committed full-mode baseline must show more than half the per-length
full profiles pruned (``MIN_PRUNED_FRACTION``).  CI runs the smoke mode
(``REPRO_BENCH_FAST=1``), which keeps the differential assertion but
not the pruning bar (the trimmed range leaves fewer lengths to prune).
"""

import time

import numpy as np

from _common import fast_mode, save_report, save_result_json
from repro import obs
from repro.core.discords import find_discords
from repro.core.discords_variable import find_discords_pruned
from repro.harness.reporting import format_table

#: headline configuration (the committed baseline).
FULL_N, FULL_RANGE = 4_000, (16, 80)
SMOKE_N, SMOKE_RANGE = 1_200, (16, 36)

#: discords to find == anomalies injected (see the module docstring).
K = 3
ANOMALY_WIDTH = 20

#: acceptance bar for the committed full-mode baseline.
MIN_PRUNED_FRACTION = 0.5


def _workload(n: int) -> np.ndarray:
    """Noisy sine with ``K`` similar-width bump anomalies."""
    rng = np.random.default_rng(7)
    x = np.linspace(0.0, 0.02 * np.pi * n, n)
    t = np.sin(x) + 0.05 * rng.standard_normal(n)
    for pos in (n // 8, (3 * n) // 8, (5 * n) // 8):
        t[pos : pos + ANOMALY_WIDTH] += 4.0 * np.hanning(ANOMALY_WIDTH)
    return t


def test_mad_discords_pruning(benchmark):
    smoke = fast_mode()
    n = SMOKE_N if smoke else FULL_N
    l_min, l_max = SMOKE_RANGE if smoke else FULL_RANGE
    series = _workload(n)

    def sweep():
        start = time.perf_counter()
        full = find_discords(series, l_min, l_max, k=K)
        full_seconds = time.perf_counter() - start
        with obs.tracing(True):
            before = dict(obs.get_tracer().counters())
            start = time.perf_counter()
            pruned = find_discords_pruned(series, l_min, l_max, k=K)
            pruned_seconds = time.perf_counter() - start
            after = dict(obs.get_tracer().counters())
        counters = {
            name: value - before.get(name, 0)
            for name, value in after.items()
            if value != before.get(name, 0)
        }
        return full, full_seconds, pruned, pruned_seconds, counters

    full, full_seconds, pruned, pruned_seconds, counters = benchmark.pedantic(
        sweep, iterations=1, rounds=1
    )

    # The exactness claim, pinned to the timing run.
    assert full == pruned

    swept = counters.get("discords.lengths.swept", 0)
    recomputed = counters.get("discords.profiles.recomputed", 0)
    n_pruned = counters.get("discords.profiles.pruned", 0)
    assert swept == l_max - l_min + 1
    assert n_pruned + recomputed == swept
    fraction = n_pruned / swept if swept else 0.0
    speedup = full_seconds / pruned_seconds if pruned_seconds > 0 else float("inf")

    payload = {
        "bench": "mad_discords",
        "series_size": int(series.size),
        "l_min": int(l_min),
        "l_max": int(l_max),
        "k": int(K),
        "smoke": smoke,
        "full_seconds": full_seconds,
        "pruned_seconds": pruned_seconds,
        "speedup": speedup,
        "identical": True,
        "counters": {
            "discords.lengths.swept": int(swept),
            "discords.profiles.recomputed": int(recomputed),
            "discords.profiles.pruned": int(n_pruned),
        },
        "pruned_fraction": fraction,
        "discords": [
            {
                "start": d.start,
                "length": d.length,
                "normalized_distance": d.normalized_distance,
            }
            for d in pruned
        ],
    }
    save_report(
        "mad_discords",
        format_table(
            ["driver", "seconds", "profiles computed"],
            [
                ("full", f"{full_seconds:.3f}", swept),
                ("pruned", f"{pruned_seconds:.3f}", recomputed),
            ],
        )
        + f"\nn={series.size} range={l_min}..{l_max} k={K} "
        f"pruned {n_pruned}/{swept} ({fraction:.0%}) "
        f"speedup {speedup:.2f}x smoke={smoke}",
    )
    save_result_json("BENCH_mad_discords", payload)

    if not smoke:
        assert fraction > MIN_PRUNED_FRACTION
