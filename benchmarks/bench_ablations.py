"""Ablations of the design choices DESIGN.md calls out.

* VALMOD with the Eq.-2 pruning disabled (degenerates to STOMP-range) —
  isolates the contribution of the lower bound.
* VALMOD with the partial-recompute path disabled — isolates Algorithm
  4's lines 27-38.
* QUICK MOTIF across PAA widths — the summary-resolution trade-off.
* MOEN with the cross-length bound disabled (always full refresh).
"""

import time

from _common import bench_grid, save_report
from repro.baselines.moen import MoenStats, moen
from repro.baselines.quick_motif import quick_motif
from repro.core.valmod import Valmod
from _common import bench_dataset
from repro.harness.reporting import format_table


def timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def test_ablation_lower_bound_pruning(benchmark):
    grid = bench_grid()
    series = bench_dataset("ECG", grid.default_size, seed=0)
    l_min = grid.default_length
    l_max = l_min + grid.default_range

    def run_both():
        pruned, t_pruned = timed(lambda: Valmod(series, l_min, l_max, p=50).run())
        unpruned, t_unpruned = timed(
            lambda: Valmod(series, l_min, l_max, lb_pruning=False).run()
        )
        return pruned, t_pruned, unpruned, t_unpruned

    pruned, t_pruned, unpruned, t_unpruned = benchmark.pedantic(
        run_both, iterations=1, rounds=1
    )
    save_report(
        "ablation_lb_pruning",
        format_table(
            ["variant", "seconds", "full recomputes"],
            [
                ("VALMOD (Eq. 2 pruning)", f"{t_pruned:.2f}",
                 pruned.stats.n_full_recomputes),
                ("VALMOD (pruning off = STOMP/length)", f"{t_unpruned:.2f}",
                 unpruned.stats.n_full_recomputes),
            ],
        ),
    )
    # Same motifs, and the pruned variant must win on friendly data.
    for length in pruned.motif_pairs:
        assert abs(
            pruned.motif_pairs[length].distance
            - unpruned.motif_pairs[length].distance
        ) < 1e-6
    assert t_pruned < t_unpruned


def test_ablation_partial_recompute_path(benchmark):
    grid = bench_grid()
    series = bench_dataset("EEG", grid.default_size, seed=0)
    l_min = grid.default_length
    l_max = l_min + grid.default_range

    def run_both():
        with_path, t_with = timed(
            lambda: Valmod(series, l_min, l_max, p=10).run()
        )
        without, t_without = timed(
            lambda: Valmod(series, l_min, l_max, p=10, recompute_fraction=0.0).run()
        )
        return with_path, t_with, without, t_without

    with_path, t_with, without, t_without = benchmark.pedantic(
        run_both, iterations=1, rounds=1
    )
    save_report(
        "ablation_partial_recompute",
        format_table(
            ["variant", "seconds", "partial", "full"],
            [
                ("partial recompute on", f"{t_with:.2f}",
                 with_path.stats.n_partial_recomputes,
                 with_path.stats.n_full_recomputes),
                ("partial recompute off", f"{t_without:.2f}",
                 without.stats.n_partial_recomputes,
                 without.stats.n_full_recomputes),
            ],
        ),
    )
    for length in with_path.motif_pairs:
        assert abs(
            with_path.motif_pairs[length].distance
            - without.motif_pairs[length].distance
        ) < 1e-6
    assert without.stats.n_partial_recomputes == 0
    assert with_path.stats.n_full_recomputes <= without.stats.n_full_recomputes


def test_ablation_quick_motif_paa_width(benchmark):
    grid = bench_grid()
    series = bench_dataset("ECG", grid.default_size, seed=0)
    l_min = grid.default_length
    l_max = l_min + 2

    def sweep():
        rows = []
        for width in (2, 4, 8, 16):
            pairs, seconds = timed(
                lambda w=width: quick_motif(series, l_min, l_max, width=w)
            )
            rows.append((width, f"{seconds:.2f}", f"{pairs[l_min].distance:.4f}"))
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    save_report(
        "ablation_quickmotif_width",
        format_table(["PAA width", "seconds", "motif distance"], rows),
    )
    # Exactness does not depend on the summary width.
    assert len({distance for _, _, distance in rows}) == 1


def test_ablation_moen_bound(benchmark):
    grid = bench_grid()
    series = bench_dataset("ECG", grid.default_size, seed=0)
    l_min = grid.default_length
    l_max = l_min + grid.default_range

    def run_both():
        stats_on = MoenStats()
        _, t_on = timed(
            lambda: moen(series, l_min, l_max, refresh_fraction=0.5, stats=stats_on)
        )
        stats_off = MoenStats()
        _, t_off = timed(
            lambda: moen(series, l_min, l_max, refresh_fraction=0.0, stats=stats_off)
        )
        return stats_on, t_on, stats_off, t_off

    stats_on, t_on, stats_off, t_off = benchmark.pedantic(
        run_both, iterations=1, rounds=1
    )
    save_report(
        "ablation_moen_bound",
        format_table(
            ["variant", "seconds", "full refreshes"],
            [
                ("MOEN (cross-length bound)", f"{t_on:.2f}", stats_on.full_refreshes),
                ("MOEN (bound off: refresh always)", f"{t_off:.2f}",
                 stats_off.full_refreshes),
            ],
        ),
    )
    assert stats_off.full_refreshes == len(stats_off.lengths)
