"""Observability overhead: disabled tracer cost on the kernel hot paths.

Not a paper figure — the acceptance gate for the :mod:`repro.obs` layer.
The instrumentation stays permanently in the kernels, so its *disabled*
cost must be provably negligible.  The bench:

1. measures the median wall-clock of STOMP and a VALMOD run with the
   tracer disabled;
2. counts every ``obs.add`` / ``obs.gauge`` / ``obs.span`` /
   ``obs.enabled`` invocation those workloads perform (by wrapping the
   module attributes, so the count is exact, not estimated);
3. measures the per-call cost of each disabled primitive with ``timeit``;
4. asserts ``sum(count * per_call) / median < 2%`` for each workload.

The analytic product is an upper bound on the disabled overhead — a
direct A/B timing cannot isolate it because the instrumentation cannot
be compiled out of a pure-Python kernel.
"""

import statistics
import time
import timeit

import pytest

from _common import bench_dataset, fast_mode, save_report, save_result_json
from repro import obs
from repro.core.valmod import Valmod
from repro.harness.reporting import format_table
from repro.matrixprofile import stomp

#: the acceptance threshold: disabled instrumentation must cost <2%.
MAX_OVERHEAD = 0.02

_PRIMITIVES = ("add", "gauge", "span", "enabled")


def _bench_series():
    n = 3000 if fast_mode() else 6000
    return bench_dataset("ECG", n, seed=7)


def _workloads(series):
    length = max(16, series.size // 200)
    return {
        "stomp": lambda: stomp(series, length),
        "valmod": lambda: Valmod(
            series, length, length + 8, p=20
        ).run(),
    }


def _count_primitive_calls(workload):
    """Exact invocation counts of each obs primitive during one run.

    Wraps the module attributes (every call site resolves ``obs.add`` at
    call time), runs the workload with tracing *disabled* — the regime
    being costed — then restores the originals.  Worker processes are
    not observed, so workloads must stay serial.
    """
    counts = dict.fromkeys(_PRIMITIVES, 0)
    originals = {name: getattr(obs, name) for name in _PRIMITIVES}

    def wrap(name):
        real = originals[name]

        def wrapper(*args, **kwargs):
            counts[name] += 1
            return real(*args, **kwargs)

        return wrapper

    try:
        for name in _PRIMITIVES:
            setattr(obs, name, wrap(name))
        with obs.tracing(False):
            workload()
    finally:
        for name, real in originals.items():
            setattr(obs, name, real)
    return counts


def _per_call_seconds():
    """Disabled cost of one call to each primitive, via timeit."""
    number = 20_000
    with obs.tracing(False):
        clock = {
            "add": timeit.timeit(lambda: obs.add("bench.probe"), number=number),
            "gauge": timeit.timeit(
                lambda: obs.gauge("bench.probe", 1.0), number=number
            ),
            "span": timeit.timeit(
                lambda: obs.span("bench.probe").__enter__(), number=number
            ),
            "enabled": timeit.timeit(obs.enabled, number=number),
        }
    obs.reset()
    return {name: seconds / number for name, seconds in clock.items()}


def _disabled_median(workload, rounds):
    samples = []
    with obs.tracing(False):
        for _ in range(rounds):
            start = time.perf_counter()
            workload()
            samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_obs_overhead_disabled(benchmark):
    series = _bench_series()
    workloads = _workloads(series)
    rounds = 3 if fast_mode() else 5
    per_call = _per_call_seconds()

    def measure():
        table = {}
        for name, workload in workloads.items():
            median = _disabled_median(workload, rounds)
            counts = _count_primitive_calls(workload)
            cost = sum(counts[p] * per_call[p] for p in _PRIMITIVES)
            table[name] = {
                "median_seconds": median,
                "counts": counts,
                "estimated_overhead_seconds": cost,
                "overhead_fraction": cost / median,
            }
        return table

    table = benchmark.pedantic(measure, iterations=1, rounds=1)

    rows = []
    for name, entry in table.items():
        rows.append(
            (
                name,
                f"{entry['median_seconds']:.4f}",
                sum(entry["counts"].values()),
                f"{entry['estimated_overhead_seconds'] * 1e6:.1f}us",
                f"{entry['overhead_fraction']:.5%}",
            )
        )
    save_report(
        "obs_overhead",
        format_table(
            ["workload", "median (s)", "obs calls", "overhead", "fraction"],
            rows,
        )
        + f"\nper-call (ns): "
        + " ".join(f"{p}={per_call[p] * 1e9:.0f}" for p in _PRIMITIVES),
    )
    save_result_json(
        "BENCH_obs_overhead",
        {
            "bench": "obs_overhead",
            "max_overhead": MAX_OVERHEAD,
            "per_call_seconds": per_call,
            "workloads": table,
        },
    )

    for name, entry in table.items():
        assert entry["overhead_fraction"] < MAX_OVERHEAD, (
            f"{name}: disabled obs overhead {entry['overhead_fraction']:.3%} "
            f"exceeds {MAX_OVERHEAD:.0%}"
        )
