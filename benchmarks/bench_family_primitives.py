"""Family-primitive extensions: chains, FLUSS, annotation, discords.

Not paper figures — shape-asserted benchmarks of the Section-8-adjacent
primitives, so regressions in the extensions fail the suite like the
core experiments do.
"""

import numpy as np
import pytest

from _common import bench_dataset, bench_grid, save_report
from repro.core.annotation import apply_annotation, interval_annotation
from repro.core.chains import unanchored_chain
from repro.core.discords import find_discords
from repro.core.segmentation import regime_boundaries
from repro.harness.reporting import format_table
from repro.matrixprofile import stomp


def test_family_primitives(benchmark):
    grid = bench_grid()
    length = grid.default_length

    def run_all():
        rows = []
        rng = np.random.default_rng(0)

        # Chains on a drifting pattern.
        t = 0.1 * rng.standard_normal(grid.default_size)
        base = np.linspace(0, 2 * np.pi, length)
        planted = list(range(40, t.size - length, max(3 * length, t.size // 8)))
        for k, pos in enumerate(planted):
            t[pos : pos + length] += (
                3 * np.sin(base * (1.0 + 0.12 * k)) * np.hanning(length)
            )
        chain = unanchored_chain(t, length)
        rows.append(("unanchored chain members", len(chain)))

        # FLUSS on a two-regime series.
        half = grid.default_size
        x = np.linspace(0, 30 * np.pi, half)
        series = np.concatenate(
            [np.sin(x), np.sign(np.sin(x)) * 0.8]
        ) + 0.05 * rng.standard_normal(2 * half)
        boundary = regime_boundaries(series, length, n_regimes=2)[0]
        rows.append(("FLUSS boundary error", abs(boundary - half)))

        # Annotation: suppress the true motif, get the runner-up.
        ecg = bench_dataset("ECG", grid.default_size, seed=0)
        mp = stomp(ecg, length)
        pair = mp.motif_pair()
        av = interval_annotation(
            len(mp),
            [
                (max(0, pair.a - mp.exclusion), pair.a + mp.exclusion),
                (max(0, pair.b - mp.exclusion), pair.b + mp.exclusion),
            ],
        )
        corrected = apply_annotation(mp, av)
        moved = corrected.motif_pair()
        rows.append(
            ("annotation moved motif", int(abs(moved.a - pair.a) >= mp.exclusion
                                           or abs(moved.b - pair.b) >= mp.exclusion))
        )

        # Variable-length discords on an injected anomaly.  The anomaly
        # must be unique in SHAPE (z-normalization removes amplitude):
        # a chirp occurs nowhere in the generators.
        gap = bench_dataset("GAP", grid.default_size, seed=0).copy()
        phase = np.linspace(0.0, 1.0, length)
        chirp = np.sin(2 * np.pi * (2 + 14 * phase) * phase) * np.hanning(length)
        gap[500 : 500 + length] += 6 * gap.std() * chirp
        discord = find_discords(gap, length - 4, length + 4, k=1)[0]
        rows.append(("discord position error", abs(discord.start - 500)))
        return rows, (chain, boundary, discord)

    rows, (chain, boundary, discord) = benchmark.pedantic(
        run_all, iterations=1, rounds=1
    )
    save_report(
        "family_primitives", format_table(["primitive check", "value"], rows)
    )
    values = dict(rows)
    assert values["unanchored chain members"] >= 3
    assert values["FLUSS boundary error"] <= 4 * bench_grid().default_length
    assert values["annotation moved motif"] == 1
    assert values["discord position error"] <= 2 * bench_grid().default_length
