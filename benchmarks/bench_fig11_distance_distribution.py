"""Figure 11 — distribution of pairwise subsequence distances.

Histograms of raw (non-length-normalized) pairwise distances for ECG and
EMG at a short and a long subsequence length.  The paper's explanatory
claim: EMG's distribution at long lengths grows a heavy high-distance
tail, which is what degrades VALMOD's bound there.
"""

import numpy as np

from _common import bench_dataset, bench_grid, save_report
from repro.analysis.distances import distance_histogram, pairwise_distance_sample
from repro.harness.reporting import format_histogram


def test_fig11_distance_distributions(benchmark):
    grid = bench_grid()
    short_len = grid.default_length
    long_len = min(4 * grid.default_length, grid.default_size // 4)

    def measure():
        samples = {}
        for name in ("ECG", "EMG"):
            series = bench_dataset(name, grid.default_size, seed=0)
            for length in (short_len, long_len):
                samples[(name, length)] = pairwise_distance_sample(
                    series, length, n_profiles=24
                )
        return samples

    samples = benchmark.pedantic(measure, iterations=1, rounds=1)

    sections = []
    stats = {}
    for (name, length), sample in samples.items():
        counts, edges = distance_histogram(sample, n_bins=16)
        # Normalized spread: how far the tail reaches past the median.
        spread = float(np.quantile(sample, 0.995) / np.median(sample))
        stats[(name, length)] = spread
        sections.append(
            f"--- {name} @ length {length} "
            f"(median {np.median(sample):.2f}, p99.5/median {spread:.3f}) ---\n"
            + format_histogram(counts, edges)
        )
    save_report("fig11_distance_distribution", "\n\n".join(sections))

    # Paper shape: EMG's relative tail at the long length exceeds ECG's.
    assert stats[("EMG", long_len)] > stats[("ECG", long_len)]
