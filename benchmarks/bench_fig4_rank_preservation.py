"""Figures 3-4 — ranking stability of distance vs lower-bound profiles.

Measures, over many profile owners, how much of the top-10 ranking of
the *true* distance profile survives a length increase (it churns), and
verifies the *lower-bound* profile ranking is exactly preserved for
every horizon (the property ComputeSubMP relies on).
"""

import numpy as np

from _common import bench_dataset, bench_grid, save_report
from repro.analysis.ranking_study import (
    distance_rank_agreement,
    lower_bound_rank_agreement,
)
from repro.harness.reporting import format_table


def test_fig4_rank_preservation(benchmark):
    grid = bench_grid()
    length = grid.default_length
    series = bench_dataset("EMG", grid.default_size, seed=0)
    owners = list(range(10, series.size - 4 * length, series.size // 12))

    def measure():
        rows = []
        for k in (1, length // 4, length):
            dist_agree = np.mean(
                [distance_rank_agreement(series, o, length, k) for o in owners]
            )
            lb_agree = np.mean(
                [
                    lower_bound_rank_agreement(series, o, length, 0, k)
                    for o in owners
                ]
            )
            rows.append((k, f"{dist_agree:.3f}", f"{lb_agree:.3f}"))
        return rows

    rows = benchmark.pedantic(measure, iterations=1, rounds=1)
    save_report(
        "fig4_rank_preservation",
        format_table(["k (length increase)", "distance top-10 overlap",
                      "lower-bound top-10 overlap"], rows),
    )

    # Paper shape: LB ranking exactly preserved; distance ranking churns
    # increasingly with k on noisy data.
    for _, _, lb in rows:
        assert float(lb) == 1.0
    assert float(rows[-1][1]) < 1.0
