"""Figure 10 — tightness of the lower bound (TLB) per partial profile.

The paper's protocol: average TLB of each *partial* distance profile
(the p smallest-LB entries listDP stores) at the experiment's shortest
and longest base lengths, on ECG and EMG.  ECG's tightness grows with
the base length; EMG's falls behind, which is what kills its pruning in
Figures 8-9.
"""

import numpy as np

from _common import bench_dataset, bench_grid, save_report
from repro.analysis.tlb import average_tlb_per_profile
from repro.harness.reporting import format_table


def test_fig10_tightness_of_lower_bound(benchmark):
    grid = bench_grid()
    short_base = grid.default_length
    long_base = 4 * grid.default_length
    step = grid.default_range

    def measure():
        rows = []
        means = {}
        for name in ("ECG", "EMG"):
            series = bench_dataset(name, grid.default_size, seed=0)
            for base in (short_base, long_base):
                tlb = average_tlb_per_profile(
                    series,
                    base,
                    base + step,
                    n_profiles=48,
                    top_p=grid.default_p,
                )
                mean = float(np.nanmean(tlb))
                means[(name, base)] = mean
                rows.append(
                    (name, f"{base}->{base + step}", f"{mean:.3f}",
                     f"{np.nanmin(tlb):.3f}", f"{np.nanmax(tlb):.3f}")
                )
        return rows, means

    rows, means = benchmark.pedantic(measure, iterations=1, rounds=1)
    save_report(
        "fig10_tlb",
        format_table(
            ["dataset", "lengths", "mean TLB (top-p)", "min", "max"], rows
        ),
    )

    # Paper shape: at the long base length EMG's partial-profile TLB is
    # clearly below ECG's.
    assert means[("EMG", long_base)] < means[("ECG", long_base)]
    # TLB is a ratio in [0, 1] everywhere.
    for _, _, mean, lo, hi in rows:
        assert 0.0 <= float(lo) and float(hi) <= 1.0 + 1e-9
