"""Figure 13 — scalability over the data series size.

Sweeps the series size with the default length and range; the paper's
observation is that VALMOD scales gracefully with n on every dataset
while the baselines are dataset-sensitive.
"""

from _common import ALGORITHMS, DATASETS, bench_dataset, bench_grid, fast_mode, save_report
from repro.harness.experiments import sweep_series_size
from repro.harness.reporting import format_table


def test_fig13_scalability_over_series_size(benchmark):
    grid = bench_grid()
    datasets = DATASETS[:2] if fast_mode() else DATASETS
    result = benchmark.pedantic(
        lambda: sweep_series_size(
            datasets=datasets, algorithms=ALGORITHMS, grid=grid,
            loader=bench_dataset,
        ),
        iterations=1,
        rounds=1,
    )
    table = format_table(result.headers(), result.table_rows())
    save_report("fig13_series_size", table)

    assert all(not row["VALMOD"].dnf for row in result.rows)

    # Paper shape: VALMOD's runtime grows smoothly (no abrupt blowups):
    # each size step at most ~quadruples the time while n at most doubles
    # (quadratic engine + constant overheads at small sizes).
    by_dataset = {}
    for row in result.rows:
        by_dataset.setdefault(row["dataset"], []).append(row)
    for dataset, rows in by_dataset.items():
        times = [r["VALMOD"].seconds for r in rows]
        for earlier, later in zip(times, times[1:]):
            assert later < 6.0 * max(earlier, 0.05), (
                f"abrupt VALMOD blowup on {dataset}: {times}"
            )
