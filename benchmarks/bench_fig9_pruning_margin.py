"""Figure 9 — maxLB - minDist pruning margins per distance profile.

The paper's protocol: build listDP at the experiment's shortest base
length and at its longest, advance each by the motif range, and plot the
per-profile margin on the ECG (stable) and EMG (degrading) datasets.  A
positive margin means ComputeSubMP certified the profile without any
recomputation (Algorithm 4, line 16).
"""

import numpy as np

from _common import bench_dataset, bench_grid, save_report
from repro.analysis.pruning import pruning_margins
from repro.harness.reporting import format_table


def test_fig9_pruning_margins(benchmark):
    grid = bench_grid()
    short_base = grid.default_length
    long_base = 4 * grid.default_length
    step = grid.default_range

    def measure():
        rows = []
        fractions = {}
        for name in ("ECG", "EMG"):
            series = bench_dataset(name, grid.default_size, seed=0)
            for base in (short_base, long_base):
                margins = pruning_margins(
                    series, base, base + step, p=grid.default_p
                )
                frac = float((margins > 0).mean())
                fractions[(name, base)] = frac
                rows.append(
                    (
                        name,
                        f"{base}->{base + step}",
                        f"{np.median(margins):.3f}",
                        f"{margins.min():.3f}",
                        f"{margins.max():.3f}",
                        f"{frac:.2%}",
                    )
                )
        return rows, fractions

    rows, fractions = benchmark.pedantic(measure, iterations=1, rounds=1)
    save_report(
        "fig9_pruning_margin",
        format_table(
            ["dataset", "lengths", "median margin", "min", "max",
             "valid (margin>0)"],
            rows,
        ),
    )

    # Paper shape: ECG pruning stays effective at the long base length;
    # EMG's collapses there (Figure 9 right vs left).
    assert fractions[("ECG", long_base)] > 0.5
    assert fractions[("EMG", long_base)] < fractions[("ECG", long_base)]
    assert fractions[("EMG", long_base)] <= fractions[("EMG", short_base)] + 0.05
