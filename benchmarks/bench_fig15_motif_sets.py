"""Figure 15 — time performance of variable-length motif set discovery.

The paper's table: VALMP build time once per dataset, then the motif-set
extraction time as K varies (with D at its default) and as the radius
factor D varies (with K at its default).  The headline claim — set
extraction is orders of magnitude faster than the VALMP build — is
asserted.
"""

from _common import DATASETS, bench_dataset, bench_grid, fast_mode, save_report
from repro.harness.experiments import sweep_motif_sets
from repro.harness.reporting import format_table


def test_fig15_motif_set_discovery(benchmark):
    grid = bench_grid()
    datasets = DATASETS[:2] if fast_mode() else DATASETS
    rows = benchmark.pedantic(
        lambda: sweep_motif_sets(datasets=datasets, grid=grid, loader=bench_dataset),
        iterations=1,
        rounds=1,
    )
    table = format_table(
        ["dataset", "vary", "value", "top-K sets (seconds)",
         "VALMP time (seconds)", "sets found"],
        [
            (r["dataset"], r["vary"], r["value"], f"{r['seconds']:.4f}",
             f"{r['valmp_seconds']:.2f}", r["n_sets"])
            for r in rows
        ],
    )
    save_report("fig15_motif_sets", table)

    # Paper shape: extraction is dramatically cheaper than the VALMP
    # build (3-6 orders of magnitude in the paper's full-scale C; the
    # gap compresses at laptop scale because the VALMP build itself is
    # sub-second).  The median row must be much cheaper; the worst row
    # (EMG at the largest K, where most pairs recompute full profiles)
    # may approach parity at this scale but not exceed 2x.
    ratios = sorted(r["valmp_seconds"] / max(r["seconds"], 1e-9) for r in rows)
    for r in rows:
        assert r["seconds"] < 2.0 * r["valmp_seconds"], (
            f"motif-set extraction unexpectedly slow: {r}"
        )
    assert ratios[len(ratios) // 2] > 5.0, f"median ratio too small: {ratios}"
    # Varying K: extraction time grows at most linearly with K.
    for dataset in datasets:
        k_rows = [r for r in rows if r["dataset"] == dataset and r["vary"] == "K"]
        ks = [r["value"] for r in k_rows]
        times = [max(r["seconds"], 1e-6) for r in k_rows]
        assert times[-1] / times[0] < 10 * (ks[-1] / ks[0])
