"""Pytest configuration for the benchmark suite."""

import sys
from pathlib import Path

# Make the sibling _common module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).resolve().parent))
