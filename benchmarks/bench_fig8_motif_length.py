"""Figure 8 — scalability over the motif length l_min.

Sweeps l_min over the (scaled) Table-2 grid with the default range and
series size, for all five datasets and all four algorithms, and prints
the same runtime matrix the paper plots.  DNF entries reproduce the
paper's "failed to finish" bars.
"""

from _common import ALGORITHMS, DATASETS, bench_dataset, bench_grid, fast_mode, save_report
from repro.harness.experiments import sweep_motif_length
from repro.harness.reporting import format_table


def test_fig8_scalability_over_motif_length(benchmark):
    grid = bench_grid()
    datasets = DATASETS[:2] if fast_mode() else DATASETS
    result = benchmark.pedantic(
        lambda: sweep_motif_length(
            datasets=datasets, algorithms=ALGORITHMS, grid=grid,
            loader=bench_dataset,
        ),
        iterations=1,
        rounds=1,
    )
    table = format_table(result.headers(), result.table_rows())
    speedups = result.speedup_vs("STOMP")
    summary = (
        f"median VALMOD speedup vs STOMP-range: "
        f"{sorted(speedups)[len(speedups) // 2]:.2f}x over {len(speedups)} points"
    )
    save_report("fig8_motif_length", table + "\n\n" + summary)

    # Paper shape: VALMOD never DNFs and beats STOMP-range overall.
    valmod_total = sum(
        row["VALMOD"].seconds for row in result.rows if not row["VALMOD"].dnf
    )
    stomp_total = sum(
        row["STOMP"].seconds for row in result.rows if not row["STOMP"].dnf
    )
    assert all(not row["VALMOD"].dnf for row in result.rows)
    assert valmod_total < 1.2 * stomp_total
