"""Figure 14 — effect of the parameter p.

Left plots of the figure: VALMOD runtime per p value.  Right plots:
|subMP| per iteration (the number of exactly-known entries per length),
which the paper shows decreasing the same way regardless of p.
"""

import numpy as np

from _common import DATASETS, bench_dataset, bench_grid, fast_mode, save_report
from repro.harness.experiments import sweep_parameter_p
from repro.harness.reporting import format_series, format_table


def test_fig14_effect_of_p(benchmark):
    grid = bench_grid()
    datasets = DATASETS[:2] if fast_mode() else DATASETS
    rows = benchmark.pedantic(
        lambda: sweep_parameter_p(datasets=datasets, grid=grid, loader=bench_dataset),
        iterations=1,
        rounds=1,
    )
    table = format_table(
        ["dataset", "p", "seconds", "pure-subMP lengths", "full recomputes"],
        [
            (r["dataset"], r["p"], f"{r['seconds']:.2f}",
             r["fast_lengths"], r["full_recomputes"])
            for r in rows
        ],
    )
    trajectories = "\n".join(
        format_series(
            f"{r['dataset']} p={r['p']}",
            r["submp_sizes"],
            fmt="{:.0f}",
        )
        for r in rows
        if r["p"] in (5, 50, 150)
    )
    save_report(
        "fig14_param_p", table + "\n\n|subMP| per iteration:\n" + trajectories
    )

    # Paper shape: increasing p gives no significant runtime advantage —
    # the largest p must not be drastically faster than the paper default.
    by_dataset = {}
    for r in rows:
        by_dataset.setdefault(r["dataset"], {})[r["p"]] = r["seconds"]
    for dataset, times in by_dataset.items():
        assert times[150] > 0.3 * times[50], (
            f"unexpectedly large p-benefit on {dataset}: {times}"
        )
