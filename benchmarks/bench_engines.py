"""Engine comparison: STOMP vs STAMP vs SCRIMP vs streaming appends.

Not a paper figure — an engineering bench for the matrix-profile
substrate.  All engines must produce identical profiles; the bench
records their relative costs and the anytime engines' convergence.
"""

import numpy as np
import pytest

from _common import bench_dataset, bench_grid, save_report
from repro.harness.reporting import format_table
from repro.matrixprofile import StreamingMatrixProfile, scrimp, stamp, stomp
from repro.matrixprofile.scrimp import pre_scrimp


@pytest.fixture(scope="module")
def series():
    return bench_dataset("GAP", bench_grid().default_size, seed=1)


@pytest.fixture(scope="module")
def length():
    return bench_grid().default_length


def test_engines_agree_and_compare(benchmark, series, length):
    import time

    def run_all():
        timings = {}
        profiles = {}
        for name, engine in (
            ("STOMP", stomp),
            ("STAMP", stamp),
            ("SCRIMP", scrimp),
        ):
            start = time.perf_counter()
            profiles[name] = engine(series, length)
            timings[name] = time.perf_counter() - start
        start = time.perf_counter()
        profiles["PRE-SCRIMP"] = pre_scrimp(series, length)
        timings["PRE-SCRIMP"] = time.perf_counter() - start
        return timings, profiles

    timings, profiles = benchmark.pedantic(run_all, iterations=1, rounds=1)
    rows = [(name, f"{seconds:.3f}") for name, seconds in timings.items()]
    save_report("engines_comparison", format_table(["engine", "seconds"], rows))

    reference = profiles["STOMP"].profile
    for name in ("STAMP", "SCRIMP"):
        np.testing.assert_allclose(
            profiles[name].profile, reference, atol=1e-6,
            err_msg=f"{name} disagrees with STOMP",
        )
    # PRE-SCRIMP is an upper-bound approximation.
    approx = profiles["PRE-SCRIMP"].profile
    finite = np.isfinite(approx) & np.isfinite(reference)
    assert np.all(approx[finite] >= reference[finite] - 1e-6)
    # ... and it is the cheap one.
    assert timings["PRE-SCRIMP"] < min(
        timings["STOMP"], timings["STAMP"], timings["SCRIMP"]
    )


def test_streaming_appends(benchmark, series, length):
    split = series.size - 256

    def stream_tail():
        monitor = StreamingMatrixProfile(series[:split], length)
        monitor.extend(series[split:])
        return monitor.matrix_profile()

    streamed = benchmark.pedantic(stream_tail, iterations=1, rounds=1)
    batch = stomp(series, length)
    finite = np.isfinite(batch.profile)
    np.testing.assert_allclose(
        streamed.profile[finite], batch.profile[finite], atol=1e-6
    )


def test_anytime_convergence(benchmark, series, length):
    exact = stomp(series, length).motif_pair().distance

    def sweep():
        rows = []
        for fraction in (0.1, 0.25, 0.5, 1.0):
            mp = scrimp(
                series, length, fraction=fraction,
                rng=np.random.default_rng(0),
            )
            rows.append((fraction, mp.motif_pair().distance))
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    save_report(
        "engines_anytime_convergence",
        format_table(
            ["diagonal fraction", "best-so-far motif distance"],
            [(fraction, f"{d:.4f}") for fraction, d in rows],
        )
        + f"\nexact: {exact:.4f}",
    )
    distances = [d for _, d in rows]
    # Convergence from above, exact at fraction 1.0.
    assert distances == sorted(distances, reverse=True) or len(set(distances)) == 1
    assert distances[-1] == pytest.approx(exact, abs=1e-6)
